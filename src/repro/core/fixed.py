"""The baseline: fixed scheduler with shortest path and first fit (SPFF).

Per the poster: "the fixed scheduler considers a fixed set of direct
communication links between the global model and each local model.  AI
model weights are transmitted using end-to-end links in broadcast and
upload procedures, and then only aggregated in the node with a global
model."

Concretely, for a task with global node G and locals L1..Lk:

1. route every ``G -> Li`` (broadcast) and ``Li -> G`` (upload) on the
   latency-shortest path, ignoring what the other flows of the same task
   pick (that is what makes it *fixed*);
2. allocate rate first-fit: every flow asks for the task's demand, and
   when the task's own flows contend on a shared edge (they always do on
   G's access link) each gets an equal share of the residual capacity;
3. aggregation happens only at G, serialising ``k - 1`` merges.

The equal-share step is the charitable reading of "first fit" — a literal
greedy first-come allocation would starve later locals entirely and make
the baseline look worse than the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import NoPathError, SchedulingError
from ..network import csr, routing
from ..network.graph import Network
from ..network.paths import dijkstra, latency_weight
from ..tasks.aitask import AITask
from .base import Edge, Scheduler, TaskSchedule, traced_schedule

#: Flows allocated less than this rate are considered blocked.
MIN_RATE_GBPS = 1e-3


class FixedScheduler(Scheduler):
    """Shortest-path + first-fit baseline (aggregation only at the root).

    Args:
        min_rate_gbps: admission floor; scheduling fails if any flow
            would receive less than this.
        use_cache: resolve shortest paths through the network's
            :class:`~repro.network.routing.PathCache` (latency weights
            survive reservations, so hits are common).  ``None`` defers
            to the ``REPRO_PATH_CACHE`` environment switch.
        use_csr: run routing and rate scoring on the array-native CSR
            kernel (:mod:`repro.network.csr`); byte-identical results.
            ``None`` defers to the ``REPRO_CSR`` switch.
    """

    name = "fixed-spff"

    def __init__(
        self,
        min_rate_gbps: float = MIN_RATE_GBPS,
        use_cache: "bool | None" = None,
        use_csr: "bool | None" = None,
    ) -> None:
        if min_rate_gbps <= 0:
            raise SchedulingError(
                f"min_rate_gbps must be > 0, got {min_rate_gbps}"
            )
        self._min_rate = min_rate_gbps
        self._use_cache = use_cache
        self._use_csr = use_csr

    @traced_schedule
    def schedule(self, task: AITask, network: Network) -> TaskSchedule:
        cached = (
            routing.cache_enabled() if self._use_cache is None else self._use_cache
        )
        use_csr = csr.resolve(self._use_csr)
        if cached:
            cache = routing.get_cache(network)
            spec = routing.LatencyWeightSpec(network)

            def route(src: str, dst: str) -> Tuple[str, ...]:
                return cache.shortest_path(src, dst, spec, csr=self._use_csr).nodes

        elif use_csr:
            spec = routing.LatencyWeightSpec(network)

            def route(src: str, dst: str) -> Tuple[str, ...]:
                return csr.shortest_path_csr(network, src, dst, spec).nodes

        else:
            weight = latency_weight(network)

            def route(src: str, dst: str) -> Tuple[str, ...]:
                return dijkstra(network, src, dst, weight).nodes

        broadcast_paths: Dict[str, Tuple[str, ...]] = {}
        upload_paths: Dict[str, Tuple[str, ...]] = {}
        try:
            for local in task.local_nodes:
                broadcast_paths[local] = route(task.global_node, local)
                upload_paths[local] = route(local, task.global_node)
        except NoPathError as exc:
            raise SchedulingError(
                f"task {task.task_id!r}: {exc}"
            ) from exc

        # Count how many of this task's flows cross each directed edge.
        edge_flows: Dict[Edge, int] = {}
        for paths in (broadcast_paths, upload_paths):
            for path in paths.values():
                for edge in zip(path, path[1:]):
                    edge_flows[edge] = edge_flows.get(edge, 0) + 1

        # Equal-share rate per flow: bounded by the demand and by the
        # residual capacity divided by this task's flow count on every
        # edge the flow crosses.  Under the CSR kernel the residuals are
        # gathered in one vectorised subtraction (same floats:
        # capacity minus recorded use) instead of per-edge link lookups.
        if use_csr:
            snapshot = csr.get_snapshot(network)
            residual = snapshot.residual_list()
            edge_pos = snapshot.edge_pos

            def flow_rate(path: Tuple[str, ...]) -> float:
                rate = task.demand_gbps
                for edge in zip(path, path[1:]):
                    share = residual[edge_pos[edge]] / edge_flows[edge]
                    rate = min(rate, share)
                return rate

        else:

            def flow_rate(path: Tuple[str, ...]) -> float:
                rate = task.demand_gbps
                for edge in zip(path, path[1:]):
                    share = network.residual_gbps(*edge) / edge_flows[edge]
                    rate = min(rate, share)
                return rate

        broadcast_rates = {
            local: flow_rate(path) for local, path in broadcast_paths.items()
        }
        upload_rates = {
            local: flow_rate(path) for local, path in upload_paths.items()
        }
        blocked = [
            local
            for local in task.local_nodes
            if broadcast_rates[local] < self._min_rate
            or upload_rates[local] < self._min_rate
        ]
        if blocked:
            raise SchedulingError(
                f"task {task.task_id!r}: locals {blocked} blocked; "
                "no residual capacity on their shortest paths"
            )

        # Reserve.  Per-edge totals are the sums of per-flow rates, which
        # by construction never exceed the residual observed above.
        broadcast_edges: Dict[Edge, float] = {}
        upload_edges: Dict[Edge, float] = {}
        reserved: List[Edge] = []
        try:
            for local, path in broadcast_paths.items():
                for edge in zip(path, path[1:]):
                    network.reserve_edge(*edge, broadcast_rates[local], task.task_id)
                    reserved.append(edge)
                    broadcast_edges[edge] = (
                        broadcast_edges.get(edge, 0.0) + broadcast_rates[local]
                    )
            for local, path in upload_paths.items():
                for edge in zip(path, path[1:]):
                    network.reserve_edge(*edge, upload_rates[local], task.task_id)
                    reserved.append(edge)
                    upload_edges[edge] = (
                        upload_edges.get(edge, 0.0) + upload_rates[local]
                    )
        except Exception:
            network.release_owner(task.task_id)
            raise

        return TaskSchedule(
            task=task,
            scheduler=self.name,
            broadcast_routes=broadcast_paths,
            upload_routes=upload_paths,
            broadcast_flow_rates=broadcast_rates,
            upload_flow_rates=upload_rates,
            broadcast_edge_rates=broadcast_edges,
            upload_edge_rates=upload_edges,
        )
