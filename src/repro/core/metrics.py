"""Result records produced by schedule evaluation and experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class RoundLatency:
    """Latency breakdown of one training round.

    Attributes:
        broadcast_ms: global-to-locals weight distribution (max over locals).
        training_ms: slowest local training time.
        upload_ms: communication+aggregation time of the upload procedure
            measured from the end of the slowest training (the critical
            path beyond training).
        total_ms: full round: broadcast + max(training chain, upload chain)
            as computed on the critical path.
    """

    broadcast_ms: float
    training_ms: float
    upload_ms: float
    total_ms: float


@dataclass(frozen=True)
class TaskReport:
    """End-to-end evaluation of one scheduled task.

    Attributes:
        task_id: the task.
        scheduler: scheduler name that produced the schedule.
        n_locals: local models actually served.
        round_latency: per-round breakdown.
        total_latency_ms: rounds x round latency + control overhead.
        consumed_bandwidth_gbps: summed reserved rate over directed edges
            (the paper's Fig. 3b metric).
        endpoint_cpu_ms: transport CPU burned per round at the endpoints.
        aggregation_nodes: nodes executing merges during upload.
    """

    task_id: str
    scheduler: str
    n_locals: int
    round_latency: RoundLatency
    total_latency_ms: float
    consumed_bandwidth_gbps: float
    endpoint_cpu_ms: float
    aggregation_nodes: Tuple[str, ...]

    def as_row(self) -> Dict[str, object]:
        """Flat dict for tabular experiment output."""
        return {
            "task_id": self.task_id,
            "scheduler": self.scheduler,
            "n_locals": self.n_locals,
            "broadcast_ms": round(self.round_latency.broadcast_ms, 6),
            "training_ms": round(self.round_latency.training_ms, 6),
            "upload_ms": round(self.round_latency.upload_ms, 6),
            "round_ms": round(self.round_latency.total_ms, 6),
            "total_ms": round(self.total_latency_ms, 6),
            "bandwidth_gbps": round(self.consumed_bandwidth_gbps, 6),
            "cpu_ms": round(self.endpoint_cpu_ms, 6),
            "aggregation_nodes": ",".join(self.aggregation_nodes),
        }
