"""Stronger baselines the poster defers to future work.

The poster: "we take a fixed scheduler using shortest path and first fit
(SPFF) as baselines, while the comparison with stronger baselines will
come as future works."  This module provides two such baselines so the
flexible scheduler can be judged against more than the weakest strawman:

* :class:`KspLoadBalancedScheduler` — like SPFF but each flow picks, among
  the k latency-shortest paths, the one with the most residual capacity
  at its bottleneck.  It fixes SPFF's worst failure (piling every flow
  onto one shortest path) while keeping end-to-end flows and
  root-only aggregation.
* :class:`ChainScheduler` — daisy-chain (sequential) aggregation: a
  single path visits every local model and ends at the global node; each
  hop carries exactly one (partially aggregated) payload.  This is the
  bandwidth-optimal extreme — the chain uses the fewest payload-edges of
  any aggregation topology — but its latency grows linearly in ``k``
  because the chain serialises, which is precisely the trade the MST tree
  balances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import NoPathError, SchedulingError
from ..network import csr, routing
from ..network.graph import Network
from ..network.paths import (
    PathResult,
    TreeResult,
    dijkstra,
    k_shortest_paths,
    latency_weight,
)
from ..tasks.aggregation import UploadAggregationPlan
from ..tasks.aitask import AITask
from .base import Edge, Scheduler, TaskSchedule, traced_schedule
from .fixed import MIN_RATE_GBPS


class KspLoadBalancedScheduler(Scheduler):
    """k-shortest-paths with bottleneck-residual load balancing.

    Args:
        k: candidate paths per flow (Yen's algorithm).
        min_rate_gbps: admission floor per flow.
        use_cache: resolve the k-shortest candidates through the
            network's :class:`~repro.network.routing.PathCache`.
            ``None`` defers to the ``REPRO_PATH_CACHE`` switch.
        use_csr: run Yen's searches and bottleneck scoring on the
            array-native CSR kernel; byte-identical results.  ``None``
            defers to the ``REPRO_CSR`` switch.
    """

    name = "ksp-lb"

    def __init__(
        self,
        k: int = 3,
        min_rate_gbps: float = MIN_RATE_GBPS,
        use_cache: Optional[bool] = None,
        use_csr: Optional[bool] = None,
    ) -> None:
        if k < 1:
            raise SchedulingError(f"k must be >= 1, got {k}")
        if min_rate_gbps <= 0:
            raise SchedulingError(
                f"min_rate_gbps must be > 0, got {min_rate_gbps}"
            )
        self._k = k
        self._min_rate = min_rate_gbps
        self._use_cache = use_cache
        self._use_csr = use_csr

    def _best_path(
        self,
        network: Network,
        source: str,
        destination: str,
        planned: Dict[Edge, int],
        demand: float,
    ) -> Tuple[str, ...]:
        """Among k shortest paths, the one with the fattest bottleneck.

        The bottleneck accounts for both live reservations and the flows
        this schedule has already *planned* onto each edge, so this task's
        own flows spread across the candidates.
        """
        cached = (
            routing.cache_enabled() if self._use_cache is None else self._use_cache
        )
        use_csr = csr.resolve(self._use_csr)
        if cached:
            candidates = routing.get_cache(network).k_shortest_paths(
                source,
                destination,
                self._k,
                routing.LatencyWeightSpec(network),
                csr=self._use_csr,
            )
        elif use_csr:
            candidates = csr.k_shortest_paths_csr(
                network,
                source,
                destination,
                self._k,
                routing.LatencyWeightSpec(network),
            )
        else:
            candidates = k_shortest_paths(
                network, source, destination, self._k, latency_weight(network)
            )

        if use_csr:
            # Vectorised residual gather (same floats as residual_gbps).
            snapshot = csr.get_snapshot(network)
            residual = snapshot.residual_list()
            edge_pos = snapshot.edge_pos

            def bottleneck(path: PathResult) -> float:
                return min(
                    residual[edge_pos[(a, b)]] - planned.get((a, b), 0) * demand
                    for a, b in zip(path.nodes, path.nodes[1:])
                )

        else:

            def bottleneck(path: PathResult) -> float:
                return min(
                    network.residual_gbps(a, b) - planned.get((a, b), 0) * demand
                    for a, b in zip(path.nodes, path.nodes[1:])
                )

        # Max bottleneck residual; ties broken towards the shorter path
        # (candidates arrive weight-sorted, and max() keeps the first).
        return max(candidates, key=bottleneck).nodes

    @traced_schedule
    def schedule(self, task: AITask, network: Network) -> TaskSchedule:
        # Phase 1: pick a path per flow, spreading over the k candidates.
        planned: Dict[Edge, int] = {}
        broadcast_paths: Dict[str, Tuple[str, ...]] = {}
        upload_paths: Dict[str, Tuple[str, ...]] = {}
        try:
            for local in task.local_nodes:
                for paths, src, dst in (
                    (broadcast_paths, task.global_node, local),
                    (upload_paths, local, task.global_node),
                ):
                    path = self._best_path(
                        network, src, dst, planned, task.demand_gbps
                    )
                    paths[local] = path
                    for edge in zip(path, path[1:]):
                        planned[edge] = planned.get(edge, 0) + 1
        except NoPathError as exc:
            raise SchedulingError(f"task {task.task_id!r}: {exc}") from exc

        # Phase 2: equal-share rates where this task's flows still share
        # an edge (unavoidable on the global node's access link).
        if csr.resolve(self._use_csr):
            snapshot = csr.get_snapshot(network)
            residual = snapshot.residual_list()
            edge_pos = snapshot.edge_pos

            def flow_rate(path: Tuple[str, ...]) -> float:
                return min(
                    [task.demand_gbps]
                    + [
                        residual[edge_pos[(a, b)]] / planned[(a, b)]
                        for a, b in zip(path, path[1:])
                    ]
                )

        else:

            def flow_rate(path: Tuple[str, ...]) -> float:
                return min(
                    [task.demand_gbps]
                    + [
                        network.residual_gbps(a, b) / planned[(a, b)]
                        for a, b in zip(path, path[1:])
                    ]
                )

        broadcast_rates = {
            local: flow_rate(path) for local, path in broadcast_paths.items()
        }
        upload_rates = {
            local: flow_rate(path) for local, path in upload_paths.items()
        }
        blocked = [
            local
            for local in task.local_nodes
            if broadcast_rates[local] < self._min_rate
            or upload_rates[local] < self._min_rate
        ]
        if blocked:
            raise SchedulingError(
                f"task {task.task_id!r}: locals {blocked} blocked on every "
                f"candidate path"
            )

        broadcast_edges: Dict[Edge, float] = {}
        upload_edges: Dict[Edge, float] = {}
        try:
            for local, path in broadcast_paths.items():
                network.reserve_path(list(path), broadcast_rates[local], task.task_id)
                for edge in zip(path, path[1:]):
                    broadcast_edges[edge] = (
                        broadcast_edges.get(edge, 0.0) + broadcast_rates[local]
                    )
            for local, path in upload_paths.items():
                network.reserve_path(list(path), upload_rates[local], task.task_id)
                for edge in zip(path, path[1:]):
                    upload_edges[edge] = (
                        upload_edges.get(edge, 0.0) + upload_rates[local]
                    )
        except Exception:
            network.release_owner(task.task_id)
            raise
        return TaskSchedule(
            task=task,
            scheduler=self.name,
            broadcast_routes=broadcast_paths,
            upload_routes=upload_paths,
            broadcast_flow_rates=broadcast_rates,
            upload_flow_rates=upload_rates,
            broadcast_edge_rates=broadcast_edges,
            upload_edge_rates=upload_edges,
        )


class ChainScheduler(Scheduler):
    """Daisy-chain aggregation: one path through every local to the root.

    The visiting order is nearest-neighbour on shortest-path latency
    starting from the global node (reversed so the chain *ends* at the
    root for upload), a standard constructive heuristic.  Broadcast and
    upload both use the chain; every chain edge carries exactly one
    payload, giving the minimum possible payload-edge count at the cost of
    O(k) serial depth.
    """

    name = "chain"

    def __init__(
        self,
        min_rate_gbps: float = MIN_RATE_GBPS,
        use_cache: Optional[bool] = None,
        use_csr: Optional[bool] = None,
    ) -> None:
        if min_rate_gbps <= 0:
            raise SchedulingError(
                f"min_rate_gbps must be > 0, got {min_rate_gbps}"
            )
        self._min_rate = min_rate_gbps
        self._use_cache = use_cache
        self._use_csr = use_csr

    def _route(self, network: Network):
        """A point-to-point router: cached SSSP extraction or Dijkstra.

        The cached variant turns the nearest-neighbour sweep's ``k``
        queries from one node into a single shared single-source pass.
        """
        cached = (
            routing.cache_enabled() if self._use_cache is None else self._use_cache
        )
        if cached:
            cache = routing.get_cache(network)
            spec = routing.LatencyWeightSpec(network)
            return lambda src, dst: cache.shortest_path(
                src, dst, spec, csr=self._use_csr
            )
        if csr.resolve(self._use_csr):
            spec = routing.LatencyWeightSpec(network)
            return lambda src, dst: csr.shortest_path_csr(network, src, dst, spec)
        weight = latency_weight(network)
        return lambda src, dst: dijkstra(network, src, dst, weight)

    def _visit_order(self, task: AITask, network: Network) -> List[str]:
        """Nearest-neighbour order over terminals, starting at the root."""
        remaining = list(task.local_nodes)
        order = [task.global_node]
        if csr.resolve(self._use_csr):
            # Score the whole remaining set against one single-source
            # tree's distance dict per step instead of one point-to-point
            # query per (step, candidate) pair.  Same floats — the
            # extracted path weight *is* the tree distance.
            cached = (
                routing.cache_enabled()
                if self._use_cache is None
                else self._use_cache
            )
            spec = routing.LatencyWeightSpec(network)
            cache = routing.get_cache(network) if cached else None
            while remaining:
                current = order[-1]
                if cache is not None:
                    tree = cache.sssp(current, spec, csr=self._use_csr)
                else:
                    tree = csr.sssp_csr(network, current, spec)
                distance = tree.distance
                scored = []
                for node in remaining:
                    d = distance.get(node)
                    if d is None:
                        raise NoPathError(current, node)
                    scored.append((d, node))
                best = min(scored)[1]
                order.append(best)
                remaining.remove(best)
            return order
        route = self._route(network)
        while remaining:
            current = order[-1]
            best = min(
                remaining,
                key=lambda node: (route(current, node).weight, node),
            )
            order.append(best)
            remaining.remove(best)
        return order

    def _chain_tree(self, task: AITask, network: Network) -> TreeResult:
        """A TreeResult whose single branch follows the visit order."""
        order = self._visit_order(task, network)
        route = self._route(network)
        weight = latency_weight(network)
        parent: Dict[str, str] = {}
        total = 0.0
        for closer, farther in zip(order, order[1:]):
            segment = route(closer, farther)
            for towards_root, away in zip(segment.nodes, segment.nodes[1:]):
                if away == task.global_node or away in parent:
                    continue
                parent[away] = towards_root
                total += weight(away, towards_root)
        tree = TreeResult(root=task.global_node, parent=parent, weight=total)
        for local in task.local_nodes:
            tree.path_to_root(local)  # validates connectivity
        return tree

    def _reserve(
        self,
        task: AITask,
        network: Network,
        tree: TreeResult,
        *,
        towards_root: bool,
        multiplicity: Optional[Dict[str, int]] = None,
    ) -> Dict[Edge, float]:
        rates: Dict[Edge, float] = {}
        for child, parent in tree.edges:
            payloads = (multiplicity or {}).get(child, 1)
            demand = task.demand_gbps * payloads
            edge: Edge = (child, parent) if towards_root else (parent, child)
            held = network.link(*edge).owner_gbps(edge[0], edge[1], task.task_id)
            rate = min(max(demand - held, 0.0), network.residual_gbps(*edge))
            if held + rate < self._min_rate:
                network.release_owner(task.task_id)
                raise SchedulingError(
                    f"task {task.task_id!r}: chain edge {edge} has no "
                    "residual capacity"
                )
            if rate > 0:
                network.reserve_edge(edge[0], edge[1], rate, task.task_id)
            rates[edge] = held + rate
        return rates

    @traced_schedule
    def schedule(self, task: AITask, network: Network) -> TaskSchedule:
        tree = self._chain_tree(task, network)
        broadcast_rates = self._reserve(task, network, tree, towards_root=False)
        plan = UploadAggregationPlan(network, tree, task.local_nodes)
        multiplicity = {
            child: plan.payloads_on_edge(child) for child, _ in tree.edges
        }
        upload_rates = self._reserve(
            task, network, tree, towards_root=True, multiplicity=multiplicity
        )
        return TaskSchedule(
            task=task,
            scheduler=self.name,
            broadcast_tree=tree,
            upload_tree=tree,
            broadcast_edge_rates=broadcast_rates,
            upload_edge_rates=upload_rates,
        )
