"""Core contribution: fixed (SPFF) and flexible (MST) schedulers.

This package is the paper's primary contribution plus the machinery to
evaluate it:

* :mod:`~repro.core.base` — the scheduler interface and the
  :class:`TaskSchedule` result object (routes, trees, reserved rates);
* :mod:`~repro.core.fixed` — the baseline **SPFF** scheduler: latency-
  shortest end-to-end paths per local model, first-fit capacity,
  aggregation only at the global node;
* :mod:`~repro.core.flexible` — the proposed **MST** scheduler: per-
  procedure auxiliary graphs, terminal trees, path reuse, and
  multi-aggregation at intermediate nodes;
* :mod:`~repro.core.evaluation` — latency/bandwidth evaluation of a
  schedule under a transport protocol and aggregation cost model;
* :mod:`~repro.core.rescheduling` — when to re-schedule deployed tasks
  (open challenge #1's interruption-vs-saving trade-off);
* :mod:`~repro.core.metrics` — result records shared by experiments.
"""

from .base import Scheduler, TaskSchedule
from .baselines import ChainScheduler, KspLoadBalancedScheduler
from .evaluation import EvaluationConfig, ScheduleEvaluator
from .fixed import FixedScheduler
from .flexible import FlexibleScheduler
from .metrics import RoundLatency, TaskReport
from .prediction import IterationEstimate, IterationPredictor
from .rescheduling import ReschedulingDecision, ReschedulingPolicy
from .simulation import ExecutedRound, RoundExecutor

__all__ = [
    "Scheduler",
    "TaskSchedule",
    "ChainScheduler",
    "KspLoadBalancedScheduler",
    "EvaluationConfig",
    "ScheduleEvaluator",
    "FixedScheduler",
    "FlexibleScheduler",
    "RoundLatency",
    "TaskReport",
    "IterationEstimate",
    "IterationPredictor",
    "ReschedulingDecision",
    "ReschedulingPolicy",
    "ExecutedRound",
    "RoundExecutor",
]
