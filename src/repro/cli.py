"""Command-line entry point: experiments and scenario sweeps.

Runs any experiment from DESIGN.md §4 and prints its table, e.g.::

    repro fig3a
    repro abl-rdma --save rdma.json
    repro list

The ``scenarios`` subcommand exposes the scenario registry, the sweep
engine with its pluggable backends and sinks, and fault-profile
introspection::

    repro scenarios list
    repro scenarios list --tag resilience
    repro scenarios list --tag family:waxman --tag uniform
    repro scenarios sweep metro-mesh-uniform --set n_locals=3,6,9 \\
        --seeds 0,1 --workers 4 --cache-dir .sweep-cache --save out.json
    repro scenarios sweep metro-mesh-flaky-links --jsonl rows.jsonl
    repro scenarios sweep clos-oversub --set oversubscription=1,2,4 \\
        --sink csv --sink-path rows.csv
    repro scenarios sweep metro-mesh-flaky-links --backend socket \\
        --port 7777 --sink sqlite --sink-path sweep.db
    repro scenarios worker --connect localhost:7777
    repro scenarios sweep fat-tree-uniform --dry-run
    repro scenarios faults metro-mesh-flaky-links --seed 3 --events 10

The ``topologies`` subcommand exposes the topology-family registry —
the generators scenarios build their fabrics from::

    repro topologies list
    repro topologies describe waxman
    repro topologies build multi-metro-wan --set n_regions=2 --seed 3
    repro topologies build clos --set oversubscription=4 --save clos.json

The ``traces`` subcommand synthesises and inspects the per-epoch
traffic traces the ``trace`` workload family replays::

    repro traces synth mawi.json --seed 3 --epochs 48
    repro traces show mawi.json

The ``bench`` subcommand is the unified benchmark harness: it discovers
every registered ``benchmarks/test_bench_*`` suite, runs them with one
command, appends machine-tagged records to ``BENCH_HISTORY.jsonl``,
gates regressions against tracked floors, and renders the trajectory::

    repro bench list
    repro bench run
    repro bench run --smoke --suite scheduler --suite topologies
    repro bench verify
    repro bench report
    repro bench report --suite scheduler

``scenarios sweep`` expands the cross product of every ``--set``
dimension and the seed list over the named scenarios and runs it on the
chosen ``--backend`` — ``serial`` in-process, ``pool`` over
``--workers`` processes, or ``socket``: a work-stealing coordinator
that hands runs to any worker that connects (``--local-workers`` starts
in-process ones; ``scenarios worker --connect HOST:PORT`` joins from
anywhere).  Every backend produces byte-identical rows.  ``--serving``
overrides how workloads are served (one-at-a-time protocol vs full
campaign timeline), ``--cache-dir`` resumes finished runs, and rows
stream to ``--jsonl`` or a ``--sink``/``--sink-path`` pair (``jsonl``,
whole-file ``json``, or a queryable ``sqlite`` store with incremental
aggregates) as runs complete.  ``scenarios faults`` describes a
scenario's fault profile and previews the deterministic fail/repair
timeline it draws for a given seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from . import obs
from .experiments import (
    ExperimentResult,
    run_auxgraph_ablation,
    run_baselines_comparison,
    run_campaign_comparison,
    run_compression_ablation,
    run_failure_recovery,
    run_model_validation,
    run_optical_spectrum,
    run_optimality_gap,
    run_fig1,
    run_fig3a,
    run_fig3b,
    run_resilience_sweep,
    run_rescheduling_ablation,
    run_selection_ablation,
    run_spineleaf_ablation,
    run_transport_ablation,
)

logger = obs.get_logger("cli")

#: Experiment id -> zero-argument runner.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig1": run_fig1,
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "abl-resched": run_rescheduling_ablation,
    "abl-select": run_selection_ablation,
    "abl-rdma": run_transport_ablation,
    "abl-spineleaf": run_spineleaf_ablation,
    "abl-aux": run_auxgraph_ablation,
    "abl-baselines": run_baselines_comparison,
    "abl-failures": run_failure_recovery,
    "abl-fp16": run_compression_ablation,
    "abl-optical": run_optical_spectrum,
    "abl-simcheck": run_model_validation,
    "abl-optgap": run_optimality_gap,
    "abl-campaign": run_campaign_comparison,
    "abl-resilience": run_resilience_sweep,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the figures and ablations of 'Flexible Scheduling "
            "of Network and Computing Resources for Distributed AI Tasks'."
        ),
        epilog=(
            "The scenario registry and parallel sweep engine live under "
            "'repro scenarios': try 'repro scenarios list' and "
            "'repro scenarios sweep --help'.  The topology-family "
            "registry lives under 'repro topologies': try "
            "'repro topologies list' and 'repro topologies describe "
            "waxman'."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="experiment id from DESIGN.md §4, 'list', or 'all'",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        help="also write the result as JSON to PATH",
    )
    return parser


def build_scenarios_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scenarios",
        description="inspect the scenario registry and run parameter sweeps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="print every registered scenario")
    list_cmd.add_argument(
        "--tag",
        dest="tags",
        action="append",
        default=[],
        help=(
            "only scenarios carrying this tag; repeatable (all must "
            "match) — topology families are tags too, e.g. family:waxman"
        ),
    )

    sweep = sub.add_parser(
        "sweep",
        help="expand a parameter grid over scenarios and run it",
        description=(
            "Expands the cross product of every --set dimension and the "
            "seed list over the named scenarios, runs each (scenario, "
            "params, seed) under both schedulers, and prints the collected "
            "rows.  --backend picks where runs execute (serial, a process "
            "pool, or a work-stealing socket coordinator) with "
            "byte-identical results; --cache-dir resumes finished runs; "
            "--sink streams rows to JSONL/JSON/SQLite as runs complete."
        ),
    )
    sweep.add_argument("scenario", nargs="+", help="registered scenario names")
    sweep.add_argument(
        "--set",
        dest="grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="one grid dimension; repeat for the cross product",
    )
    sweep.add_argument(
        "--seeds",
        default="0",
        metavar="S1,S2,...",
        help="comma-separated replication seeds (default: 0)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1, help="process-pool size (default: 1)"
    )
    sweep.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist per-run results here and resume on rerun",
    )
    sweep.add_argument("--save", metavar="PATH", help="write result JSON to PATH")
    sweep.add_argument(
        "--jsonl",
        metavar="PATH",
        help="append each run's rows to this JSONL file as runs complete",
    )
    sweep.add_argument(
        "--backend",
        choices=("serial", "pool", "socket"),
        help=(
            "execution backend (default: pool when --workers > 1, else "
            "serial); 'socket' starts a work-stealing coordinator that "
            "external 'scenarios worker' processes can join"
        ),
    )
    sweep.add_argument(
        "--serving",
        choices=("protocol", "campaign"),
        help=(
            "override how every run serves its workload: 'protocol' "
            "admits tasks one at a time, 'campaign' plays the full "
            "arrival timeline under contention (default: each "
            "scenario's own mode)"
        ),
    )
    sweep.add_argument(
        "--sink",
        choices=("csv", "json", "jsonl", "sqlite"),
        help="stream rows to this sink kind (requires --sink-path)",
    )
    sweep.add_argument(
        "--sink-path",
        metavar="PATH",
        help="where the --sink writes (file or SQLite database)",
    )
    sweep.add_argument(
        "--host",
        default="127.0.0.1",
        help="socket backend: coordinator bind address (default: 127.0.0.1)",
    )
    sweep.add_argument(
        "--port",
        type=int,
        default=0,
        help="socket backend: coordinator port (default: 0 = ephemeral)",
    )
    sweep.add_argument(
        "--local-workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "socket backend: in-process worker threads (default: 0 — "
            "the sweep waits for external workers to connect)"
        ),
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "socket backend: fail the sweep if runs are still "
            "outstanding after this many seconds (default: wait forever)"
        ),
    )
    sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded run list without executing",
    )
    sweep.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "enable out-of-band telemetry for the sweep and write the "
            "trace (JSONL, rotating) to PATH; inspect it afterwards "
            "with 'repro obs report PATH'.  Result rows are "
            "byte-identical with or without tracing."
        ),
    )
    sweep.add_argument(
        "--collect",
        metavar="PATH",
        help=(
            "distributed trace collection: every run executes under a "
            "per-run capture registry (on whichever backend) and its "
            "spans/counters merge — skew-normalised — into one campaign "
            "trace at PATH; analyze it with 'repro obs analyze PATH'.  "
            "Result rows are byte-identical with or without collection."
        ),
    )

    worker = sub.add_parser(
        "worker",
        help="join a socket-backend sweep as a pull worker",
        description=(
            "Connects to a 'scenarios sweep --backend socket' coordinator, "
            "pulls runs one at a time, executes them with the same "
            "deterministic engine a serial sweep uses, and streams the "
            "rows back until the coordinator runs out of work."
        ),
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address printed by the sweep command",
    )
    worker.add_argument(
        "--name",
        help="worker name reported to the coordinator (default: host:pid)",
    )

    faults = sub.add_parser(
        "faults",
        help="describe a scenario's fault profile and preview its timeline",
        description=(
            "Shows the MTBF/MTTR fault processes a failure-aware scenario "
            "carries and the deterministic fail/repair timeline they draw "
            "for a given seed — the exact schedule a campaign run would "
            "inject."
        ),
    )
    faults.add_argument("scenario", help="a registered scenario name")
    faults.add_argument(
        "--seed", type=int, default=0, help="instance seed (default: 0)"
    )
    faults.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="one parameter override; repeatable",
    )
    faults.add_argument(
        "--events",
        type=int,
        default=20,
        help="timeline events to preview (default: 20)",
    )
    return parser


def build_topologies_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro topologies",
        description=(
            "inspect the topology-family registry and build instances "
            "without going through a scenario"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="print every registered family")
    list_cmd.add_argument("--tag", help="only families carrying this tag")

    describe = sub.add_parser(
        "describe",
        help="show one family's parameter schema",
        description=(
            "Prints the family's description, tags, and full parameter "
            "schema — name, default, bounds, and what each knob does."
        ),
    )
    describe.add_argument("family", help="a registered family name")

    build = sub.add_parser(
        "build",
        help="build one instance and summarise it",
        description=(
            "Builds the family with the given overrides and seed, then "
            "prints node/link counts by kind, capacity totals, and the "
            "region breakdown for composites.  --save dumps the exact "
            "node and link sets as JSON."
        ),
    )
    build.add_argument("family", help="a registered family name")
    build.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="one parameter override; repeatable",
    )
    build.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed override for randomised families (default: schema default)",
    )
    build.add_argument(
        "--save",
        metavar="PATH",
        help="write the built node and link sets as JSON to PATH",
    )
    return parser


def build_traces_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro traces",
        description=(
            "synthesise and inspect the per-epoch traffic traces the "
            "'trace' workload family replays"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser(
        "synth",
        help="synthesise a MAWI-like trace and write it to a file",
        description=(
            "Draws the deterministic diurnal × heavy-tailed series for "
            "the given knobs and seed, and writes it as .json or .csv — "
            "the same formats 'trace_path' scenario params replay."
        ),
    )
    synth.add_argument("path", help="output file; extension picks the format")
    synth.add_argument("--seed", type=int, default=0, help="master seed")
    synth.add_argument(
        "--epochs", type=int, default=24, help="number of epochs"
    )
    synth.add_argument(
        "--epoch-ms", type=float, default=1_000.0, help="epoch width in ms"
    )
    synth.add_argument(
        "--mean-arrivals",
        type=float,
        default=2.0,
        help="mean task arrivals per epoch",
    )
    synth.add_argument(
        "--mean-demand-gbps",
        type=float,
        default=10.0,
        help="mean per-task demand",
    )
    synth.add_argument(
        "--pareto-alpha",
        type=float,
        default=1.8,
        help="burstiness tail exponent (> 1)",
    )
    synth.add_argument(
        "--diurnal-amplitude",
        type=float,
        default=0.6,
        help="day/night swing in [0, 1)",
    )

    show = sub.add_parser(
        "show",
        help="load a trace file and summarise it",
        description=(
            "Prints the series' shape and a per-epoch arrivals/demand "
            "table, so a capture can be sanity-checked before a sweep "
            "replays it."
        ),
    )
    show.add_argument("path", help="a .json or .csv trace file")
    return parser


def _traces_main(argv: List[str]) -> int:
    """The ``repro traces`` subcommand: synth / show."""
    from .errors import ConfigurationError
    from .scenarios.traces import (
        SynthConfig,
        load_trace,
        save_trace,
        synthesize_mawi,
    )
    from .sim.rng import RandomStreams

    args = build_traces_parser().parse_args(argv)
    if args.command == "synth":
        try:
            config = SynthConfig(
                epochs=args.epochs,
                epoch_ms=args.epoch_ms,
                mean_arrivals=args.mean_arrivals,
                mean_demand_gbps=args.mean_demand_gbps,
                pareto_alpha=args.pareto_alpha,
                diurnal_amplitude=args.diurnal_amplitude,
            )
            rng = RandomStreams(args.seed).stream("workload/trace-synth")
            series = synthesize_mawi(config, rng)
            save_trace(series, args.path)
        except ConfigurationError as exc:
            logger.error("%s", exc)
            return 2
        print(
            f"{series.name}: {series.n_epochs} epochs x "
            f"{series.epoch_ms:g} ms, {series.total_tasks} tasks"
        )
        logger.info("saved trace to %s", args.path)
        return 0
    try:
        series = load_trace(args.path)
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2
    print(
        f"{series.name}: {series.n_epochs} epochs x {series.epoch_ms:g} ms "
        f"({series.horizon_ms:g} ms horizon), {series.total_tasks} tasks"
    )
    peak = max(series.arrivals)
    print("epoch  arrivals  demand_gbps")
    for index, (count, demand) in enumerate(
        zip(series.arrivals, series.demand_gbps)
    ):
        bar = "#" * (count * 20 // peak if peak else 0)
        print(f"{index:>5}  {count:>8}  {demand:>11.3f}  {bar}")
    return 0


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "run the registered benchmark suites, track their trajectory "
            "in BENCH_HISTORY.jsonl, and gate regressions against floors"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="print every discovered suite")
    list_cmd.add_argument(
        "--bench-dir",
        metavar="DIR",
        help="benchmarks directory (default: the checkout's benchmarks/)",
    )

    run = sub.add_parser(
        "run",
        help="run suites and append one machine-tagged history record",
        description=(
            "Runs every discovered suite (or just --suite NAME, "
            "repeatable), each of which asserts its qualitative shape and "
            "reports metrics, then appends exactly one machine-tagged "
            "record (host, python, CPU count, git SHA, timestamp, "
            "per-suite metrics) to the history file.  --smoke shrinks the "
            "heavy workloads to seconds for CI; smoke records are tagged "
            "so 'repro bench verify' skips their timing floors."
        ),
    )
    run.add_argument(
        "--smoke",
        action="store_true",
        help="shrink heavy workloads (CI mode); record is tagged smoke",
    )
    run.add_argument(
        "--suite",
        dest="suites",
        action="append",
        default=[],
        metavar="NAME",
        help="run only this suite; repeatable (default: every suite)",
    )
    run.add_argument(
        "--history",
        metavar="PATH",
        help="history file to append to (default: BENCH_HISTORY.jsonl "
        "at the repo root)",
    )
    run.add_argument(
        "--bench-dir",
        metavar="DIR",
        help="benchmarks directory (default: the checkout's benchmarks/)",
    )
    run.add_argument(
        "--no-append",
        action="store_true",
        help="run and print but do not touch the history file",
    )

    verify = sub.add_parser(
        "verify",
        help="assert the tracked floors against the newest history record",
        description=(
            "Checks every floor (identity/shape floors always; timing "
            "floors on full records only, scaled by --machine-class) "
            "against the newest record and exits non-zero on any "
            "violation."
        ),
    )
    verify.add_argument(
        "--history",
        metavar="PATH",
        help="history file to verify (default: BENCH_HISTORY.jsonl)",
    )
    verify.add_argument(
        "--machine-class",
        metavar="CLASS",
        help=(
            "hardware class the timing floors are scaled for: reference, "
            "workstation, laptop, or ci (default: "
            "$REPRO_BENCH_MACHINE_CLASS or 'reference')"
        ),
    )
    verify.add_argument(
        "--bench-dir",
        metavar="DIR",
        help="benchmarks directory (default: the checkout's benchmarks/)",
    )
    verify.add_argument(
        "--watch",
        action="store_true",
        help=(
            "also run the regression watchdogs: compare the newest full "
            "record against the trailing median of the trajectory and "
            "fail on step-change drift (see 'repro obs watch')"
        ),
    )

    report = sub.add_parser(
        "report",
        help="render the trend table across the recorded trajectory",
        description=(
            "Prints each suite's headline metric across every record — "
            "the migrated legacy BENCH_*.json snapshots first, then the "
            "JSONL history.  --suite NAME expands one suite into all of "
            "its metrics."
        ),
    )
    report.add_argument(
        "--history",
        metavar="PATH",
        help="history file to read (default: BENCH_HISTORY.jsonl)",
    )
    report.add_argument("--suite", help="expand this one suite's metrics")
    report.add_argument(
        "--no-legacy",
        action="store_true",
        help="hide the migrated pre-harness BENCH_*.json snapshot record",
    )
    report.add_argument(
        "--bench-dir",
        metavar="DIR",
        help="benchmarks directory (default: the checkout's benchmarks/)",
    )
    return parser


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "inspect out-of-band telemetry traces written by "
            "'scenarios sweep --trace' or obs.session(trace=...)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report",
        help="aggregate a trace into span/counter/gauge/histogram tables",
        description=(
            "Reads the trace file plus its rotations, folds every line "
            "into per-span timing rows and per-metric totals, and prints "
            "aligned tables.  --by LABEL splits span rows by a label "
            "value (e.g. --by scheduler)."
        ),
    )
    report.add_argument("trace", help="path to a trace JSONL file")
    report.add_argument(
        "--by",
        dest="span_labels",
        action="append",
        default=[],
        metavar="LABEL",
        help="split span rows by this label; repeatable",
    )

    tail = sub.add_parser(
        "tail",
        help="print the last records of a trace, one line each",
        description=(
            "Formats the newest records of the trace (meta, span, event, "
            "counter, gauge, hist) as one human-readable line each; "
            "--follow keeps watching the file for new records."
        ),
    )
    tail.add_argument("trace", help="path to a trace JSONL file")
    tail.add_argument(
        "-n",
        "--lines",
        type=int,
        default=20,
        help="records to print (default: 20)",
    )
    tail.add_argument(
        "--follow",
        action="store_true",
        help="keep printing records as they are appended (Ctrl-C stops)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="critical-path and latency analytics over a merged trace",
        description=(
            "Reads the merged campaign trace a collected sweep wrote "
            "('scenarios sweep --collect') and prints the per-run "
            "critical path split into phases (queue wait, build, "
            "schedule, drain, re-queue gaps), p50/p95/p99 tables by "
            "phase, worker, and scenario, and a span-tree flame "
            "summary — all on the skew-normalised coordinator timeline."
        ),
    )
    analyze.add_argument("trace", help="path to a merged campaign trace")
    analyze.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="flame paths / slowest runs to print (default: 15)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="print the flat metrics dict as JSON instead of tables",
    )

    watch = sub.add_parser(
        "watch",
        help="evaluate SLO and regression watchdogs; exit 1 on breach",
        description=(
            "Evaluates the declarative watchdog tables: SLO rules "
            "against an analyzed campaign trace (--trace) and "
            "trailing-median regression rules against the bench "
            "trajectory (--history).  Any breach renders a report and "
            "exits non-zero — wire it next to 'repro bench verify' in "
            "CI.  --slo adds ad-hoc rules like "
            "'phase.schedule.p99_ms<=250'."
        ),
    )
    watch.add_argument(
        "--trace",
        metavar="PATH",
        help="merged campaign trace to hold against the SLO rules",
    )
    watch.add_argument(
        "--history",
        metavar="PATH",
        help="bench history to scan for step-change regressions",
    )
    watch.add_argument(
        "--slo",
        dest="slo",
        action="append",
        default=[],
        metavar="METRIC<=LIMIT",
        help=(
            "extra SLO rule on the analyzed trace metrics "
            "(repeatable; '<=' or '>=')"
        ),
    )
    return parser


def _obs_tail_follow(path: str) -> int:
    """Print records as they land, surviving trace rotations."""
    try:
        for record in obs.follow_trace(path, poll_s=0.5):
            formatted = obs.format_record(record)
            if formatted:
                print(formatted, flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def _obs_main(argv: List[str]) -> int:
    """The ``repro obs`` subcommand: report / tail / analyze / watch."""
    import json as jsonlib

    from .errors import ConfigurationError

    args = build_obs_parser().parse_args(argv)
    try:
        if args.command == "report":
            print(
                obs.report(args.trace, span_labels=tuple(args.span_labels))
            )
            return 0
        if args.command == "analyze":
            from .obs.analyze import analyze as analyze_trace
            from .obs.analyze import render_analysis

            analysis = analyze_trace(args.trace)
            if args.json:
                print(jsonlib.dumps(analysis["metrics"], sort_keys=True))
            else:
                print(render_analysis(analysis, top=args.top))
            return 0
        if args.command == "watch":
            from .obs.watch import (
                DEFAULT_SLO_RULES,
                parse_slo_rule,
                render_watch,
                watch,
            )

            slo_rules = None
            if args.slo:
                slo_rules = list(DEFAULT_SLO_RULES) + [
                    parse_slo_rule(text) for text in args.slo
                ]
            result = watch(
                trace=args.trace,
                history=args.history,
                slo_rules=slo_rules,
            )
            print(render_watch(result))
            return 0 if result.ok else 1
        # tail
        if args.follow:
            return _obs_tail_follow(args.trace)
        records = list(obs.iter_trace(args.trace, strict=False))
        for record in records[-max(0, args.lines):]:
            formatted = obs.format_record(record)
            if formatted:
                print(formatted)
        return 0
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2


def _bench_main(argv: List[str]) -> int:
    """The ``repro bench`` subcommand: list / run / verify / report."""
    from . import bench
    from .errors import ConfigurationError

    args = build_bench_parser().parse_args(argv)
    try:
        if args.command == "list":
            suites = bench.discover_suites(args.bench_dir)
            width = max((len(suite.name) for suite in suites), default=0)
            for suite in suites:
                headline = suite.headline or "elapsed_s"
                print(
                    f"{suite.name:<{width}}  {suite.description}  "
                    f"[headline: {headline}]"
                )
            return 0
        if args.command == "run":
            record = bench.run_suites(
                args.suites,
                smoke=args.smoke,
                bench_dir=args.bench_dir,
                history_path=args.history,
                append=not args.no_append,
                echo=lambda message: logger.info("%s", message),
            )
            violations = bench.verify_record(record)
            if violations:
                logger.warning(
                    "%d floor violation(s) in this record — "
                    "'repro bench verify' will fail:",
                    len(violations),
                )
                for violation in violations:
                    logger.warning("  %s", violation.reason)
            return 0
        if args.command == "verify":
            history = bench.read_history(
                args.history or bench.history.default_history_path()
            )
            if not history:
                logger.error(
                    "no history records to verify — run "
                    "'repro bench run' first"
                )
                return 2
            record = history[-1]
            violations = bench.verify_record(
                record, machine_class=args.machine_class
            )
            label = bench.report.record_label(record)
            checked = [
                floor
                for floor in bench.FLOORS
                if floor.suite in record.get("suites", {})
                and not (floor.timing and record.get("smoke"))
            ]
            status = 0
            if violations:
                print(
                    f"bench verify FAILED on record {label}: "
                    f"{len(violations)} of {len(checked)} floors violated"
                )
                for violation in violations:
                    print(f"  FAIL {violation.reason}")
                status = 1
            else:
                print(
                    f"bench verify passed on record {label}: "
                    f"{len(checked)} floors hold"
                )
            if args.watch:
                from .obs.watch import (
                    DEFAULT_REGRESSION_RULES,
                    WatchResult,
                    evaluate_regressions,
                    render_watch,
                )

                breaches, watch_checked, skipped = evaluate_regressions(
                    history, DEFAULT_REGRESSION_RULES
                )
                print()
                print(
                    render_watch(
                        WatchResult(
                            breaches=breaches,
                            checked=watch_checked,
                            skipped=skipped,
                        )
                    )
                )
                if breaches:
                    status = 1
            return status
        # report
        try:
            bench.discover_suites(args.bench_dir)  # headline metadata
        except ConfigurationError:
            pass  # report still renders with elapsed_s fallbacks
        records = bench.load_trajectory(
            args.history, include_legacy=not args.no_legacy
        )
        print(bench.render_report(records, suite=args.suite))
        return 0
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2


def _parse_scalar(text: str):
    """CLI grid values: int if possible, else float, else the string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_overrides(items: List[str]):
    """KEY=VALUE pairs from repeated --set flags (None on a bad item)."""
    overrides = {}
    for item in items:
        if "=" not in item:
            return None, item
        key, _, value = item.partition("=")
        overrides[key] = _parse_scalar(value)
    return overrides, None


def _topologies_main(argv: List[str]) -> int:
    """The ``repro topologies`` subcommand: list / describe / build."""
    import json as jsonlib

    from .errors import ConfigurationError
    from .network.topology import get_family, list_families, regions_of

    args = build_topologies_parser().parse_args(argv)
    if args.command == "list":
        families = list_families(tag=args.tag)
        width = max((len(family.name) for family in families), default=0)
        for family in families:
            tags = ",".join(family.tags)
            print(
                f"{family.name:<{width}}  {family.description}  "
                f"[{tags}] ({len(family.schema)} params)"
            )
        return 0
    try:
        family = get_family(args.family)
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2
    if args.command == "describe":
        print(f"{family.name}: {family.description}")
        print(f"tags: {','.join(family.tags) or '(none)'}")
        print(f"seeded: {'yes' if family.seeded else 'no (fully deterministic)'}")
        if not family.schema:
            print("parameters: (none)")
            return 0
        print("parameters:")
        width = max(len(spec.name) for spec in family.schema)
        for spec in family.schema:
            bounds = []
            if spec.minimum is not None:
                bounds.append(f">= {spec.minimum:g}")
            if spec.maximum is not None:
                bounds.append(f"<= {spec.maximum:g}")
            if spec.choices is not None:
                bounds.append(f"one of {list(spec.choices)}")
            suffix = f"  ({'; '.join(bounds)})" if bounds else ""
            print(
                f"  {spec.name:<{width}}  default={spec.default!r:<8}  "
                f"{spec.doc}{suffix}"
            )
        return 0

    overrides, bad = _parse_overrides(args.overrides)
    if overrides is None:
        logger.error("--set expects KEY=VALUE, got %r", bad)
        return 2
    try:
        net = family.build(overrides, seed=args.seed)
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2
    kinds: Dict[str, int] = {}
    for node in net.nodes():
        kinds[node.kind.value] = kinds.get(node.kind.value, 0) + 1
    capacity = sum(link.capacity_gbps for link in net.links())
    print(f"{net.name}: {net.node_count} nodes, {net.link_count} links")
    print(
        "nodes by kind: "
        + ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
    )
    print(f"servers: {len(net.servers())}")
    print(f"total capacity: {capacity:g} Gbps (per direction)")
    print(f"connected: {'yes' if net.is_connected() else 'NO'}")
    regions = {label: names for label, names in regions_of(net).items() if label}
    if regions:
        print(
            "regions: "
            + ", ".join(
                f"{label}({len(names)} nodes)"
                for label, names in sorted(regions.items())
            )
        )
    if args.save:
        payload = {
            "family": family.name,
            "name": net.name,
            "nodes": [
                {
                    "name": node.name,
                    "kind": node.kind.value,
                    "attrs": node.attrs,
                }
                for node in net.nodes()
            ],
            "links": [
                {
                    "u": link.u,
                    "v": link.v,
                    "capacity_gbps": link.capacity_gbps,
                    "distance_km": link.distance_km,
                    "latency_ms": link.latency_ms,
                }
                for link in net.links()
            ],
        }
        with open(args.save, "w", encoding="utf-8") as handle:
            jsonlib.dump(payload, handle, indent=2, sort_keys=True)
        logger.info("saved topology to %s", args.save)
    return 0


def _faults_main(args) -> int:
    """Describe a fault profile and preview its drawn timeline."""
    from .errors import ConfigurationError
    from .scenarios import get_scenario, list_scenarios

    try:
        spec = get_scenario(args.scenario)
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2
    if spec.fault_profile is None:
        fault_aware = [
            s.name for s in list_scenarios() if s.fault_profile is not None
        ]
        logger.error(
            "scenario %r has no fault profile; fault-aware scenarios: %s",
            spec.name,
            fault_aware,
        )
        return 2
    overrides, bad = _parse_overrides(args.overrides)
    if overrides is None:
        logger.error("--set expects KEY=VALUE, got %r", bad)
        return 2
    try:
        instance = spec.instantiate(overrides, seed=args.seed)
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2
    profile = spec.fault_profile.resolved(instance.params)
    timeline = instance.fault_timeline
    print(f"scenario {spec.name!r} (seed {args.seed})")
    print(profile.describe())
    print(
        f"population: {timeline.link_candidates} links, "
        f"{timeline.node_candidates} nodes"
    )
    print(
        f"timeline: {timeline.fail_count} failures, "
        f"{len(timeline.events)} transitions"
    )
    for event in timeline.events[: max(0, args.events)]:
        print(
            f"  t={event.time_ms:>12.3f} ms  {event.kind:<6} "
            f"{event.component:<4} {'-'.join(event.subject)}"
        )
    remaining = len(timeline.events) - max(0, args.events)
    if remaining > 0:
        print(f"  ... {remaining} more (raise --events to see them)")
    return 0


def _worker_main(args) -> int:
    """Join a socket-backend sweep coordinator as a pull worker."""
    from .scenarios.sweep import run_worker

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        logger.error("--connect expects HOST:PORT, got %r", args.connect)
        return 2
    try:
        executed = run_worker(host, int(port_text), worker_name=args.name)
    except (OSError, ConnectionError) as exc:
        logger.error("cannot join sweep at %s: %s", args.connect, exc)
        return 2
    except Exception as exc:
        # run_worker re-raises a failing run after telling the
        # coordinator; the CLI reports it cleanly instead of a traceback.
        logger.error("worker failed a run: %s", exc)
        return 2
    logger.info("worker finished: executed %d runs", executed)
    return 0


def _build_backend(args):
    """The sweep backend selected by CLI flags (None = derive from workers)."""
    from .scenarios.sweep import SocketQueueBackend

    if args.backend != "socket":
        return args.backend
    return SocketQueueBackend(
        host=args.host,
        port=args.port,
        local_workers=args.local_workers,
        timeout=args.timeout,
        announce=lambda addr: logger.info(
            "coordinator listening on %s:%d — join with "
            "'repro scenarios worker --connect %s:%d'",
            addr[0],
            addr[1],
            addr[0],
            addr[1],
        ),
    )


def _scenarios_main(argv: List[str]) -> int:
    import contextlib

    from .errors import ConfigurationError
    from .scenarios import SweepConfig, expand_runs, list_scenarios, run_sweep
    from .scenarios.sweep import make_sink

    args = build_scenarios_parser().parse_args(argv)
    if args.command == "list":
        specs = list_scenarios(tags=args.tags)
        width = max((len(spec.name) for spec in specs), default=0)
        for spec in specs:
            tags = ",".join(spec.tags)
            print(f"{spec.name:<{width}}  {spec.description}  [{tags}]")
        return 0
    if args.command == "faults":
        return _faults_main(args)
    if args.command == "worker":
        return _worker_main(args)

    grid = {}
    for item in args.grid:
        if "=" not in item:
            logger.error("--set expects KEY=V1,V2,... got %r", item)
            return 2
        key, _, values = item.partition("=")
        grid[key] = [_parse_scalar(v) for v in values.split(",") if v]
    try:
        seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    except ValueError:
        logger.error("--seeds expects integers, got %r", args.seeds)
        return 2
    if args.sink and not args.sink_path:
        logger.error("--sink requires --sink-path")
        return 2
    if args.sink_path and not args.sink:
        logger.error("--sink-path requires --sink")
        return 2
    try:
        config = SweepConfig(
            scenarios=tuple(args.scenario),
            grid=grid,
            seeds=seeds,
            serving=args.serving,
        )
        if args.dry_run:
            for key in expand_runs(config):
                print(key.canonical())
            return 0
        sink = make_sink(args.sink, args.sink_path) if args.sink else None
        trace_scope = (
            obs.session(trace=args.trace)
            if args.trace
            else contextlib.nullcontext()
        )
        with trace_scope:
            result = run_sweep(
                config,
                workers=args.workers,
                cache_dir=args.cache_dir,
                jsonl_path=args.jsonl,
                backend=_build_backend(args),
                sink=sink,
                collect=args.collect,
            )
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2
    print(result.to_table())
    if args.trace:
        logger.info(
            "telemetry trace written to %s — inspect with "
            "'repro obs report %s'",
            args.trace,
            args.trace,
        )
    if args.collect:
        logger.info(
            "merged campaign trace written to %s — analyze with "
            "'repro obs analyze %s'",
            args.collect,
            args.collect,
        )
    if args.save:
        result.save(args.save)
        logger.info("saved sweep to %s", args.save)
    return 0


def _extract_log_level(argv: List[str]) -> Tuple[List[str], Optional[str], Optional[str]]:
    """Strip the global ``--log-level`` flag from anywhere in ``argv``.

    Returns ``(rest, level, error)``.  The flag is global so it works in
    front of or after any subcommand; stripping it here keeps every
    subparser oblivious.
    """
    rest: List[str] = []
    level: Optional[str] = None
    index = 0
    while index < len(argv):
        item = argv[index]
        if item == "--log-level":
            if index + 1 >= len(argv):
                return rest, None, "--log-level expects a value"
            level = argv[index + 1]
            index += 2
            continue
        if item.startswith("--log-level="):
            level = item.partition("=")[2]
            index += 1
            continue
        rest.append(item)
        index += 1
    if level is not None and level.strip().lower() not in obs.LOG_LEVELS:
        return rest, None, (
            f"--log-level expects one of {', '.join(obs.LOG_LEVELS)}, "
            f"got {level!r}"
        )
    return rest, level, None


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv, log_level, log_error = _extract_log_level(list(argv))
    if log_error is not None:
        print(log_error, file=sys.stderr)
        return 2
    obs.configure_logging(log_level)
    if argv and argv[0] == "scenarios":
        return _scenarios_main(argv[1:])
    if argv and argv[0] == "topologies":
        return _topologies_main(argv[1:])
    if argv and argv[0] == "traces":
        return _traces_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name]()
        print(result.to_table())
        print()
        if args.save:
            path = args.save if len(names) == 1 else f"{name}-{args.save}"
            result.save(path)
            logger.info("saved %s to %s", name, path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
