"""Command-line entry point: ``repro <experiment> [--save out.json]``.

Runs any experiment from DESIGN.md §4 and prints its table, e.g.::

    repro fig3a
    repro abl-rdma --save rdma.json
    repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .experiments import (
    ExperimentResult,
    run_auxgraph_ablation,
    run_baselines_comparison,
    run_campaign_comparison,
    run_compression_ablation,
    run_failure_recovery,
    run_model_validation,
    run_optical_spectrum,
    run_optimality_gap,
    run_fig1,
    run_fig3a,
    run_fig3b,
    run_rescheduling_ablation,
    run_selection_ablation,
    run_spineleaf_ablation,
    run_transport_ablation,
)

#: Experiment id -> zero-argument runner.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig1": run_fig1,
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "abl-resched": run_rescheduling_ablation,
    "abl-select": run_selection_ablation,
    "abl-rdma": run_transport_ablation,
    "abl-spineleaf": run_spineleaf_ablation,
    "abl-aux": run_auxgraph_ablation,
    "abl-baselines": run_baselines_comparison,
    "abl-failures": run_failure_recovery,
    "abl-fp16": run_compression_ablation,
    "abl-optical": run_optical_spectrum,
    "abl-simcheck": run_model_validation,
    "abl-optgap": run_optimality_gap,
    "abl-campaign": run_campaign_comparison,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the figures and ablations of 'Flexible Scheduling "
            "of Network and Computing Resources for Distributed AI Tasks'."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="experiment id from DESIGN.md §4, 'list', or 'all'",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        help="also write the result as JSON to PATH",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name]()
        print(result.to_table())
        print()
        if args.save:
            path = args.save if len(names) == 1 else f"{name}-{args.save}"
            result.save(path)
            print(f"saved {name} to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
