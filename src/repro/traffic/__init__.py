"""Background traffic: the testbed's "live traffic injected by a traffic
generator".

Two modes:

* **static** (:meth:`TrafficGenerator.inject_static`) — deterministically
  occupy a target fraction of capacity with persistent flows; the mode the
  figure experiments use so runs are exactly reproducible;
* **dynamic** (:meth:`TrafficGenerator.start`) — a Poisson flow
  arrival/departure process on the simulation engine, for the
  re-scheduling experiments where conditions must *change* over time.
"""

from .generator import BackgroundFlow, TrafficGenerator

__all__ = ["BackgroundFlow", "TrafficGenerator"]
