"""Background-traffic generation over a network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError, NoPathError
from ..network.graph import Network
from ..network.node import NodeKind
from ..network.paths import dijkstra, latency_weight
from ..sim.engine import Simulator
from ..sim.process import Process
from ..sim.rng import RandomStreams


@dataclass(frozen=True)
class BackgroundFlow:
    """One injected flow: a rate pinned along a routed path."""

    flow_id: str
    path: Tuple[str, ...]
    rate_gbps: float


class TrafficGenerator:
    """Injects live traffic between router nodes.

    Args:
        network: the data plane to load.
        streams: random source (named stream "traffic").
        rate_gbps: rate of each injected flow.
    """

    def __init__(
        self,
        network: Network,
        streams: Optional[RandomStreams] = None,
        *,
        rate_gbps: float = 5.0,
    ) -> None:
        if rate_gbps <= 0:
            raise ConfigurationError(f"rate must be > 0 Gbps, got {rate_gbps}")
        self._network = network
        self._rng = (streams or RandomStreams(0)).stream("traffic")
        self._rate = rate_gbps
        self._counter = itertools.count()
        self._flows: List[BackgroundFlow] = []
        self._injected = 0

    @property
    def flows(self) -> List[BackgroundFlow]:
        """Currently injected flows."""
        return list(self._flows)

    @property
    def injected_count(self) -> int:
        """Total flows ever injected (departures included)."""
        return self._injected

    def _endpoints(self) -> List[str]:
        routers = self._network.node_names(NodeKind.ROUTER)
        if len(routers) >= 2:
            return routers
        # Fall back to any nodes when the fabric has no ROUTER kind
        # (e.g. spine-leaf uses LEAF).
        leaves = self._network.node_names(NodeKind.LEAF)
        if len(leaves) >= 2:
            return leaves
        return self._network.node_names()

    def _inject_one(self) -> Optional[BackgroundFlow]:
        endpoints = self._endpoints()
        src, dst = self._rng.sample(endpoints, 2)
        flow_id = f"bg-{next(self._counter)}"
        try:
            path = dijkstra(
                self._network, src, dst, latency_weight(self._network)
            ).nodes
        except NoPathError:
            return None
        rate = self._rate
        for edge in zip(path, path[1:]):
            rate = min(rate, self._network.residual_gbps(*edge))
        if rate <= 1e-6:
            return None
        self._network.reserve_path(list(path), rate, flow_id)
        flow = BackgroundFlow(flow_id=flow_id, path=path, rate_gbps=rate)
        self._flows.append(flow)
        self._injected += 1
        return flow

    def inject_static(self, n_flows: int) -> List[BackgroundFlow]:
        """Inject up to ``n_flows`` persistent flows (skips blocked pairs).

        Returns:
            The flows actually injected.
        """
        if n_flows < 0:
            raise ConfigurationError(f"n_flows must be >= 0, got {n_flows}")
        injected = []
        for _ in range(n_flows):
            flow = self._inject_one()
            if flow is not None:
                injected.append(flow)
        return injected

    def remove_flow(self, flow_id: str) -> float:
        """Tear down one flow; returns the rate released."""
        self._flows = [f for f in self._flows if f.flow_id != flow_id]
        return self._network.release_owner(flow_id)

    def clear(self) -> float:
        """Tear down every injected flow."""
        released = 0.0
        for flow in list(self._flows):
            released += self.remove_flow(flow.flow_id)
        return released

    def start(
        self,
        sim: Simulator,
        *,
        duration_ms: float,
        mean_interarrival_ms: float = 50.0,
        mean_holding_ms: float = 500.0,
    ) -> Process:
        """Poisson arrivals with exponential holding times on the engine.

        Each arrival injects one flow; a departure event releases it after
        an exponential holding time.
        """
        if mean_interarrival_ms <= 0 or mean_holding_ms <= 0:
            raise ConfigurationError(
                "interarrival and holding means must be > 0"
            )

        def body():
            elapsed = 0.0
            while elapsed < duration_ms:
                gap = self._rng.expovariate(1.0 / mean_interarrival_ms)
                yield gap
                elapsed += gap
                flow = self._inject_one()
                if flow is not None:
                    hold = self._rng.expovariate(1.0 / mean_holding_ms)
                    sim.schedule_in(
                        hold,
                        lambda fid=flow.flow_id: self.remove_flow(fid),
                        name=f"{flow.flow_id}:departure",
                    )

        return Process(sim, body(), name="traffic-generator")
