"""Optional failure models attached to scenario specs.

A failure model perturbs the freshly built topology before any traffic or
tasks touch it, so every scheduler sees the same degraded fabric.  Models
draw from a dedicated named stream, keeping failures reproducible and
independent of workload randomness.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from ..network.graph import Network


@dataclass(frozen=True)
class LinkFailureModel:
    """Fail a fixed number of randomly chosen inter-switch links.

    Server attachment links are never failed — a dead attachment link
    just deletes the server from the scenario, which is a placement
    question, not a routing one.

    Attributes:
        n_failures: links to fail (capped at the candidate count).
    """

    n_failures: int = 1

    def __post_init__(self) -> None:
        if self.n_failures < 1:
            raise ConfigurationError(
                f"n_failures must be >= 1, got {self.n_failures}"
            )

    def apply(self, network: Network, rng: random.Random) -> Tuple[Tuple[str, str], ...]:
        """Fail links in ``network``; returns the failed (u, v) pairs."""
        candidates: List[Tuple[str, str]] = network.inter_switch_links()
        if self.n_failures > len(candidates):
            warnings.warn(
                f"LinkFailureModel: requested {self.n_failures} failures "
                f"but only {len(candidates)} inter-switch links exist; "
                f"failing all {len(candidates)}",
                RuntimeWarning,
                stacklevel=2,
            )
        chosen = rng.sample(candidates, min(self.n_failures, len(candidates)))
        for u, v in chosen:
            network.fail_link(u, v)
        return tuple(chosen)
