"""Workload builders for scenario specs.

Each builder maps ``(network, params, streams)`` to a
:class:`~repro.tasks.workload.TaskWorkload`.  ``uniform`` reuses the
stock generator unchanged; ``pareto`` redraws per-task demands from a
heavy-tailed Pareto distribution (flow *sizes* in real traffic are
heavy-tailed, so a handful of elephant tasks dominate); ``bursty``
redraws arrival times from a Poisson cluster process (arrivals come in
correlated bursts rather than as a smooth stream).  Both redraws happen
on dedicated named streams, so the placement/model draws stay identical
to the uniform workload with the same seed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from ..errors import ConfigurationError
from ..network.graph import Network
from ..sim.rng import RandomStreams
from ..tasks.workload import TaskWorkload, WorkloadConfig, generate_workload


def _base_config(params: Dict[str, Any]) -> WorkloadConfig:
    return WorkloadConfig(
        n_tasks=params["n_tasks"],
        n_locals=params["n_locals"],
        demand_gbps=params["demand_gbps"],
        rounds=params.get("rounds", 3),
        mean_interarrival_ms=params.get("mean_interarrival_ms", 0.0),
    )


def uniform(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """The stock generator: fixed demand, smooth Poisson arrivals."""
    return generate_workload(network, _base_config(params), streams)


def pareto(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """Heavy-tailed per-task demands with mean ``demand_gbps``.

    Demands follow Pareto(alpha) with the scale chosen so the mean stays
    at ``demand_gbps``; ``demand_cap_gbps`` clips the extreme tail so a
    single draw cannot exceed any physical link.
    """
    alpha = params.get("pareto_alpha", 1.8)
    if alpha <= 1.0:
        raise ConfigurationError(
            f"pareto_alpha must be > 1 for a finite mean, got {alpha}"
        )
    cap = params.get("demand_cap_gbps", 80.0)
    scale = params["demand_gbps"] * (alpha - 1.0) / alpha
    base = generate_workload(network, _base_config(params), streams)
    rng = streams.stream("workload/pareto-demand")
    tasks = tuple(
        dataclasses.replace(
            task,
            demand_gbps=round(min(cap, scale * rng.paretovariate(alpha)), 6),
        )
        for task in base
    )
    return TaskWorkload(tasks=tasks, config=base.config)


def bursty(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """Poisson cluster arrivals: quiet gaps separating tight task bursts.

    Bursts of ``burst_size`` tasks arrive with exponential gaps of mean
    ``mean_burst_gap_ms``; tasks inside a burst are spaced by mean
    ``intra_burst_ms``.  This concentrates admission pressure, the regime
    where schedulers actually compete for residual capacity.
    """
    burst_size = params.get("burst_size", 5)
    if burst_size < 1:
        raise ConfigurationError(f"burst_size must be >= 1, got {burst_size}")
    gap_ms = params.get("mean_burst_gap_ms", 1_000.0)
    intra_ms = params.get("intra_burst_ms", 5.0)
    base = generate_workload(network, _base_config(params), streams)
    rng = streams.stream("workload/burst-arrivals")
    clock = 0.0
    tasks = []
    for index, task in enumerate(base):
        if index % burst_size == 0:
            clock += rng.expovariate(1.0 / gap_ms)
        else:
            clock += rng.expovariate(1.0 / intra_ms)
        tasks.append(dataclasses.replace(task, arrival_ms=round(clock, 6)))
    return TaskWorkload(tasks=tuple(tasks), config=base.config)


#: Builder name -> callable, for CLI/docs introspection.
WORKLOADS = {
    "uniform": uniform,
    "pareto": pareto,
    "bursty": bursty,
}
