"""Workload builders for scenario specs.

Each builder maps ``(network, params, streams)`` to a
:class:`~repro.tasks.workload.TaskWorkload`.  ``uniform`` reuses the
stock generator unchanged; ``pareto`` redraws per-task demands from a
heavy-tailed Pareto distribution (flow *sizes* in real traffic are
heavy-tailed, so a handful of elephant tasks dominate); ``bursty``
redraws arrival times from a Poisson cluster process (arrivals come in
correlated bursts rather than as a smooth stream); ``trace`` replays a
per-epoch arrival/demand series (loaded from file or synthesised —
see :mod:`repro.scenarios.traces`); ``interdc`` mixes deadline-bearing
inter-datacenter transfer classes (bulk vs interactive).  Every redraw
happens on dedicated named streams, so the placement/model draws stay
identical to the uniform workload with the same seed.

All builders honour a ``modulation`` parameter (``"none"`` /
``"diurnal"`` / ``"flash-crowd"``) when wrapped in :class:`Modulated`;
``trace`` and ``interdc`` apply it natively.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from ..errors import ConfigurationError
from ..network.graph import Network
from ..sim.rng import RandomStreams
from ..tasks.workload import TaskWorkload, WorkloadConfig, generate_workload
from .traces import (
    SynthConfig,
    epoch_arrival_times,
    epoch_demands,
    diurnal_arrivals,
    flash_crowd,
    load_trace,
    synthesize_mawi,
)


def _base_config(params: Dict[str, Any]) -> WorkloadConfig:
    return WorkloadConfig(
        n_tasks=params["n_tasks"],
        n_locals=params["n_locals"],
        demand_gbps=params["demand_gbps"],
        rounds=params.get("rounds", 3),
        mean_interarrival_ms=params.get("mean_interarrival_ms", 0.0),
    )


def uniform(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """The stock generator: fixed demand, smooth Poisson arrivals."""
    return generate_workload(network, _base_config(params), streams)


def pareto(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """Heavy-tailed per-task demands with mean ``demand_gbps``.

    Demands follow Pareto(alpha) with the scale chosen so the mean stays
    at ``demand_gbps``; ``demand_cap_gbps`` clips the extreme tail so a
    single draw cannot exceed any physical link.
    """
    alpha = params.get("pareto_alpha", 1.8)
    if alpha <= 1.0:
        raise ConfigurationError(
            f"pareto_alpha must be > 1 for a finite mean, got {alpha}"
        )
    cap = params.get("demand_cap_gbps", 80.0)
    scale = params["demand_gbps"] * (alpha - 1.0) / alpha
    base = generate_workload(network, _base_config(params), streams)
    rng = streams.stream("workload/pareto-demand")
    tasks = tuple(
        dataclasses.replace(
            task,
            demand_gbps=round(min(cap, scale * rng.paretovariate(alpha)), 6),
        )
        for task in base
    )
    return TaskWorkload(tasks=tasks, config=base.config)


def bursty(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """Poisson cluster arrivals: quiet gaps separating tight task bursts.

    Bursts of ``burst_size`` tasks arrive with exponential gaps of mean
    ``mean_burst_gap_ms``; tasks inside a burst are spaced by mean
    ``intra_burst_ms``.  This concentrates admission pressure, the regime
    where schedulers actually compete for residual capacity.
    """
    burst_size = params.get("burst_size", 5)
    if burst_size < 1:
        raise ConfigurationError(f"burst_size must be >= 1, got {burst_size}")
    gap_ms = params.get("mean_burst_gap_ms", 1_000.0)
    intra_ms = params.get("intra_burst_ms", 5.0)
    # expovariate takes 1/mean — a zero mean would be a ZeroDivisionError
    # mid-sweep, so reject it like burst_size above.
    if gap_ms <= 0:
        raise ConfigurationError(
            f"mean_burst_gap_ms must be > 0, got {gap_ms}"
        )
    if intra_ms <= 0:
        raise ConfigurationError(
            f"intra_burst_ms must be > 0, got {intra_ms}"
        )
    base = generate_workload(network, _base_config(params), streams)
    rng = streams.stream("workload/burst-arrivals")
    clock = 0.0
    tasks = []
    for index, task in enumerate(base):
        if index % burst_size == 0:
            clock += rng.expovariate(1.0 / gap_ms)
        else:
            clock += rng.expovariate(1.0 / intra_ms)
        tasks.append(dataclasses.replace(task, arrival_ms=round(clock, 6)))
    return TaskWorkload(tasks=tuple(tasks), config=base.config)


def trace(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """Replay a per-epoch arrival/demand series as the task mix.

    The series comes from ``trace_path`` (a CSV/JSON capture) or — when
    the path is empty — from the deterministic MAWI-like synthesiser on
    the ``workload/trace-synth`` stream.  Task count and demands follow
    the series (``n_tasks`` is ignored); arrival instants fall uniformly
    inside each epoch (``workload/trace-arrivals`` stream); per-epoch
    demands are clipped at ``demand_cap_gbps``.
    """
    path = params.get("trace_path", "")
    if path:
        series = load_trace(path)
    else:
        series = synthesize_mawi(
            SynthConfig(
                epochs=params.get("trace_epochs", 24),
                epoch_ms=params.get("trace_epoch_ms", 1_000.0),
                mean_arrivals=params.get("trace_mean_arrivals", 2.0),
                mean_demand_gbps=params["demand_gbps"],
                pareto_alpha=params.get("trace_pareto_alpha", 1.8),
                diurnal_amplitude=params.get("trace_diurnal_amplitude", 0.6),
                diurnal_period_epochs=params.get(
                    "trace_diurnal_period_epochs", 24
                ),
                max_arrivals_per_epoch=params.get(
                    "trace_max_arrivals_per_epoch", 50
                ),
            ),
            streams.stream("workload/trace-synth"),
        )
    cap = params.get("demand_cap_gbps", 80.0)
    if cap <= 0:
        raise ConfigurationError(f"demand_cap_gbps must be > 0, got {cap}")
    base = generate_workload(
        network,
        WorkloadConfig(
            n_tasks=series.total_tasks,
            n_locals=params["n_locals"],
            demand_gbps=params["demand_gbps"],
            rounds=params.get("rounds", 3),
            mean_interarrival_ms=0.0,
        ),
        streams,
    )
    arrivals = epoch_arrival_times(
        series, streams.stream("workload/trace-arrivals")
    )
    demands = epoch_demands(series)
    tasks = tuple(
        dataclasses.replace(
            task,
            arrival_ms=arrival,
            demand_gbps=round(min(cap, demand), 6),
        )
        for task, arrival, demand in zip(base, arrivals, demands)
    )
    return _modulate(
        TaskWorkload(tasks=tasks, config=base.config), params, streams
    )


def interdc(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """Deadline-bearing inter-DC transfer classes: bulk vs interactive.

    Each task joins the *bulk* class (big demand, loose deadline) with
    probability ``bulk_fraction``, else the *interactive* class (small
    demand, tight deadline), drawn on the ``workload/interdc-class``
    stream.  Deadlines are relative to arrival; the campaign runner
    reports misses (see
    :class:`~repro.orchestrator.campaign.CampaignResult`).
    """
    bulk_fraction = params.get("bulk_fraction", 0.3)
    if not 0.0 <= bulk_fraction <= 1.0:
        raise ConfigurationError(
            f"bulk_fraction must lie in [0, 1], got {bulk_fraction}"
        )
    classes = {
        True: (
            params.get("bulk_demand_gbps", 25.0),
            params.get("bulk_deadline_ms", 30_000.0),
        ),
        False: (
            params.get("interactive_demand_gbps", 5.0),
            params.get("interactive_deadline_ms", 6_000.0),
        ),
    }
    for demand, deadline in classes.values():
        if demand <= 0:
            raise ConfigurationError(
                f"class demand must be > 0 Gbps, got {demand}"
            )
        if deadline <= 0:
            raise ConfigurationError(
                f"class deadline must be > 0 ms, got {deadline}"
            )
    base = generate_workload(network, _base_config(params), streams)
    rng = streams.stream("workload/interdc-class")
    tasks = []
    for task in base:
        demand, deadline = classes[rng.random() < bulk_fraction]
        tasks.append(
            dataclasses.replace(
                task, demand_gbps=demand, deadline_ms=deadline
            )
        )
    return _modulate(
        TaskWorkload(tasks=tuple(tasks), config=base.config), params, streams
    )


#: Modulation modes a workload parameter dict may name.
MODULATIONS = ("none", "diurnal", "flash-crowd")


def _modulate(
    workload: TaskWorkload, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """Apply the ``modulation`` named in ``params`` over a built workload.

    ``diurnal`` is RNG-free (a deterministic arrival time-warp);
    ``flash-crowd`` draws on its own ``workload/flash-crowd`` stream —
    either way the base workload's streams are untouched, so modulated
    and unmodulated runs share placements, models, and demands.
    """
    mode = params.get("modulation", "none")
    if mode == "none":
        return workload
    if mode == "diurnal":
        tasks = diurnal_arrivals(
            workload.tasks,
            period_ms=params.get("diurnal_period_ms", 10_000.0),
            amplitude=params.get("diurnal_amplitude", 0.6),
        )
    elif mode == "flash-crowd":
        tasks = flash_crowd(
            workload.tasks,
            streams.stream("workload/flash-crowd"),
            time_ms=params.get("flash_time_ms", 2_000.0),
            width_ms=params.get("flash_width_ms", 500.0),
            fraction=params.get("flash_fraction", 0.5),
        )
    else:
        raise ConfigurationError(
            f"modulation must be one of {MODULATIONS}, got {mode!r}"
        )
    return TaskWorkload(tasks=tasks, config=workload.config)


@dataclasses.dataclass(frozen=True)
class Modulated:
    """Wrap any builder so the ``modulation`` parameter applies on top.

    A frozen dataclass (not a closure) so wrapped builders stay
    picklable on specs riding into spawn-started sweep workers.
    """

    base: Any

    def __call__(
        self, network: Network, params: Dict[str, Any], streams: RandomStreams
    ) -> TaskWorkload:
        return _modulate(self.base(network, params, streams), params, streams)


#: Builder name -> callable, for CLI/docs introspection.
WORKLOADS = {
    "uniform": uniform,
    "pareto": pareto,
    "bursty": bursty,
    "trace": trace,
    "interdc": interdc,
}
