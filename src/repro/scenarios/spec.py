"""Scenario specifications: named topology × workload × failure bundles.

A :class:`ScenarioSpec` is the unit the registry stores and the sweep
engine expands: a topology builder, a workload builder, an optional
failure model, and a dict of default parameters.  ``instantiate`` turns
a spec plus overrides plus a seed into a concrete, fully deterministic
:class:`ScenarioInstance` — same (spec, params, seed) always yields the
same network, failures, and task mix, in any process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..network.graph import Network
from ..params import coerce_override
from ..resilience.processes import FaultTimeline, build_timeline
from ..resilience.profile import FaultProfile
from ..sim.rng import RandomStreams
from ..tasks.workload import TaskWorkload
from .failures import LinkFailureModel

#: Builds the fabric from the merged parameter dict.
TopologyBuilder = Callable[[Dict[str, Any]], Network]
#: Builds the task mix on that fabric from params + named streams.
WorkloadBuilder = Callable[[Network, Dict[str, Any], RandomStreams], TaskWorkload]


@dataclass(frozen=True)
class FamilyTopology:
    """A registry-backed topology reference usable as a spec's builder.

    Instead of a bespoke closure per scenario, a spec names a registered
    :class:`~repro.network.topology.family.TopologyFamily` and this
    adapter forwards the scenario's merged parameters to it: every
    scenario parameter whose (optionally renamed) key appears in the
    family's schema is passed through, the rest — workload knobs, fault
    numbers — are ignored.  Because family parameters ride on the
    scenario's own parameter dict, ``scenarios sweep --set`` can grid
    over topology structure (Waxman ``alpha``, Clos oversubscription)
    exactly like any workload knob, and the family's schema validates
    bounds on every build.

    Attributes:
        family: a registered topology-family name.
        rename: ``(scenario_key, family_key)`` pairs mapping scenario
            parameter names onto schema names (e.g. ``topology_seed``
            -> ``seed``); stored as a tuple so the spec stays hashable
            and picklable for spawn-started sweep workers.
    """

    family: str
    rename: Tuple[Tuple[str, str], ...] = ()

    def __call__(self, params: Dict[str, Any]) -> Network:
        # Imported here to keep repro.network.topology free to import
        # nothing from the scenario layer.
        from ..network.topology import get_family

        fam = get_family(self.family)
        rename = dict(self.rename)
        schema_keys = {spec.name for spec in fam.schema}
        overrides = {}
        for key, value in params.items():
            target = rename.get(key, key)
            if target in schema_keys:
                overrides[target] = value
        return fam.build(overrides)

    def family_defaults(self) -> Dict[str, Any]:
        """The family's schema defaults under *scenario* parameter names.

        Convenience for catalogue authors: seeds a spec's ``defaults``
        with every topology knob so each one is sweepable, with the
        rename map applied in reverse.
        """
        from ..network.topology import get_family

        reverse = {dst: src for src, dst in self.rename}
        return {
            reverse.get(spec.name, spec.name): spec.default
            for spec in get_family(self.family).schema
        }


@dataclass(frozen=True)
class ScenarioInstance:
    """One concrete realisation of a scenario.

    Attributes:
        spec: the originating spec.
        params: the merged (defaults + overrides) parameters.
        seed: the seed the instance was derived from.
        network: the built (and possibly failure-degraded) fabric.
        workload: the generated task mix.
        streams: the instance's random streams (for background traffic).
        failed_links: links the failure model took down, if any.
        fault_timeline: the drawn fail/repair schedule when the spec
            carries a :class:`~repro.resilience.profile.FaultProfile`.
        metadata: instance bookkeeping (e.g. requested vs applied static
            failures, drawn fault-event count).
    """

    spec: "ScenarioSpec"
    params: Dict[str, Any]
    seed: int
    network: Network
    workload: TaskWorkload
    streams: RandomStreams
    failed_links: Tuple[Tuple[str, str], ...] = ()
    fault_timeline: Optional[FaultTimeline] = None
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, parameterized scenario.

    Attributes:
        name: unique registry key.
        description: one-line summary shown by ``repro scenarios list``.
        topology: builder mapping params -> Network.
        workload: builder mapping (network, params, streams) -> workload.
        failures: optional failure model applied right after topology
            construction (before traffic and tasks).
        fault_profile: optional time-driven fault processes (MTBF/MTTR
            link and node failures) played while a campaign serves the
            workload; requires ``serve="campaign"``.  Profile fields
            named in the parameter dict (``link_mtbf_ms``, ...) are
            swept like any other parameter.
        defaults: every legal parameter with its default value; overrides
            naming any other key are rejected.
        serve: how the sweep engine plays the workload — "sequential"
            admits tasks one at a time (the Fig. 3 protocol, arrival
            times ignored), "campaign" plays the full arrival timeline
            on the simulation engine so bursts and contention matter.
        tags: free-form labels (topology family, workload family).
    """

    name: str
    description: str
    topology: TopologyBuilder
    workload: WorkloadBuilder
    failures: Optional[LinkFailureModel] = None
    fault_profile: Optional[FaultProfile] = None
    defaults: Mapping[str, Any] = field(default_factory=dict)
    serve: str = "sequential"
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or " " in self.name:
            raise ConfigurationError(
                f"scenario name must be non-empty without '/' or spaces, "
                f"got {self.name!r}"
            )
        if self.serve not in ("sequential", "campaign"):
            raise ConfigurationError(
                f"serve must be 'sequential' or 'campaign', got {self.serve!r}"
            )
        if self.fault_profile is not None and self.serve != "campaign":
            raise ConfigurationError(
                f"scenario {self.name!r}: a fault_profile is time-driven "
                "and requires serve='campaign'"
            )
        # Registry-backed topologies advertise their family as a tag, so
        # `repro scenarios list --tag family:waxman` finds every scenario
        # on a given fabric without catalogue authors hand-tagging.
        family_tag = (
            f"family:{self.topology.family}"
            if isinstance(self.topology, FamilyTopology)
            else None
        )
        if family_tag is not None and family_tag not in self.tags:
            object.__setattr__(self, "tags", tuple(self.tags) + (family_tag,))

    @property
    def topology_family(self) -> Optional[str]:
        """The registered family name, when the topology is registry-backed."""
        if isinstance(self.topology, FamilyTopology):
            return self.topology.family
        return None

    def merge_params(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Defaults overlaid with ``overrides``; unknown keys rejected.

        Coercion follows the shared policy in :mod:`repro.params`: a
        numeric default accepts any numeric override, a None default
        accepts numbers or None, anything else must match the default's
        type.
        """
        merged = dict(self.defaults)
        for key, value in (overrides or {}).items():
            if key not in merged:
                raise ConfigurationError(
                    f"scenario {self.name!r} has no parameter {key!r}; "
                    f"valid: {sorted(merged)}"
                )
            merged[key] = coerce_override(
                value,
                merged[key],
                where=f"scenario {self.name!r}: parameter {key!r}",
            )
        return merged

    def instantiate(
        self,
        params: Optional[Mapping[str, Any]] = None,
        *,
        seed: int = 0,
    ) -> ScenarioInstance:
        """Build the deterministic instance for (params, seed)."""
        merged = self.merge_params(params)
        streams = RandomStreams(seed).fork(f"scenario:{self.name}")
        network = self.topology(merged)
        metadata: Dict[str, Any] = {}
        failed: Tuple[Tuple[str, str], ...] = ()
        if self.failures is not None:
            failed = self.failures.apply(network, streams.stream("failures"))
            metadata["failures_requested"] = self.failures.n_failures
            metadata["failures_applied"] = len(failed)
        workload = self.workload(network, merged, streams)
        timeline: Optional[FaultTimeline] = None
        if self.fault_profile is not None:
            profile = self.fault_profile.resolved(merged)
            timeline = build_timeline(
                profile, network, streams.stream("fault-timeline")
            )
            metadata["fault_events_drawn"] = timeline.fail_count
        return ScenarioInstance(
            spec=self,
            params=merged,
            seed=seed,
            network=network,
            workload=workload,
            streams=streams,
            failed_links=failed,
            fault_timeline=timeline,
            metadata=metadata,
        )
