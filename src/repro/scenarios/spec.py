"""Scenario specifications: named topology × workload × failure bundles.

A :class:`ScenarioSpec` is the unit the registry stores and the sweep
engine expands: a topology builder, a workload builder, an optional
failure model, and a dict of default parameters.  ``instantiate`` turns
a spec plus overrides plus a seed into a concrete, fully deterministic
:class:`ScenarioInstance` — same (spec, params, seed) always yields the
same network, failures, and task mix, in any process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..network.graph import Network
from ..resilience.processes import FaultTimeline, build_timeline
from ..resilience.profile import FaultProfile
from ..sim.rng import RandomStreams
from ..tasks.workload import TaskWorkload
from .failures import LinkFailureModel

#: Builds the fabric from the merged parameter dict.
TopologyBuilder = Callable[[Dict[str, Any]], Network]
#: Builds the task mix on that fabric from params + named streams.
WorkloadBuilder = Callable[[Network, Dict[str, Any], RandomStreams], TaskWorkload]


@dataclass(frozen=True)
class ScenarioInstance:
    """One concrete realisation of a scenario.

    Attributes:
        spec: the originating spec.
        params: the merged (defaults + overrides) parameters.
        seed: the seed the instance was derived from.
        network: the built (and possibly failure-degraded) fabric.
        workload: the generated task mix.
        streams: the instance's random streams (for background traffic).
        failed_links: links the failure model took down, if any.
        fault_timeline: the drawn fail/repair schedule when the spec
            carries a :class:`~repro.resilience.profile.FaultProfile`.
        metadata: instance bookkeeping (e.g. requested vs applied static
            failures, drawn fault-event count).
    """

    spec: "ScenarioSpec"
    params: Dict[str, Any]
    seed: int
    network: Network
    workload: TaskWorkload
    streams: RandomStreams
    failed_links: Tuple[Tuple[str, str], ...] = ()
    fault_timeline: Optional[FaultTimeline] = None
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, parameterized scenario.

    Attributes:
        name: unique registry key.
        description: one-line summary shown by ``repro scenarios list``.
        topology: builder mapping params -> Network.
        workload: builder mapping (network, params, streams) -> workload.
        failures: optional failure model applied right after topology
            construction (before traffic and tasks).
        fault_profile: optional time-driven fault processes (MTBF/MTTR
            link and node failures) played while a campaign serves the
            workload; requires ``serve="campaign"``.  Profile fields
            named in the parameter dict (``link_mtbf_ms``, ...) are
            swept like any other parameter.
        defaults: every legal parameter with its default value; overrides
            naming any other key are rejected.
        serve: how the sweep engine plays the workload — "sequential"
            admits tasks one at a time (the Fig. 3 protocol, arrival
            times ignored), "campaign" plays the full arrival timeline
            on the simulation engine so bursts and contention matter.
        tags: free-form labels (topology family, workload family).
    """

    name: str
    description: str
    topology: TopologyBuilder
    workload: WorkloadBuilder
    failures: Optional[LinkFailureModel] = None
    fault_profile: Optional[FaultProfile] = None
    defaults: Mapping[str, Any] = field(default_factory=dict)
    serve: str = "sequential"
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or " " in self.name:
            raise ConfigurationError(
                f"scenario name must be non-empty without '/' or spaces, "
                f"got {self.name!r}"
            )
        if self.serve not in ("sequential", "campaign"):
            raise ConfigurationError(
                f"serve must be 'sequential' or 'campaign', got {self.serve!r}"
            )
        if self.fault_profile is not None and self.serve != "campaign":
            raise ConfigurationError(
                f"scenario {self.name!r}: a fault_profile is time-driven "
                "and requires serve='campaign'"
            )

    def merge_params(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Defaults overlaid with ``overrides``; unknown keys rejected.

        A numeric default accepts any numeric override; otherwise the
        override must match the default's type (None defaults accept
        anything).
        """
        merged = dict(self.defaults)
        for key, value in (overrides or {}).items():
            if key not in merged:
                raise ConfigurationError(
                    f"scenario {self.name!r} has no parameter {key!r}; "
                    f"valid: {sorted(merged)}"
                )
            default = merged[key]
            if default is not None:
                numeric = isinstance(default, (int, float)) and not isinstance(
                    default, bool
                )
                if numeric:
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        raise ConfigurationError(
                            f"scenario {self.name!r}: parameter {key!r} "
                            f"expects a number, got {value!r}"
                        )
                    if isinstance(default, int) and isinstance(value, float):
                        if not value.is_integer():
                            raise ConfigurationError(
                                f"scenario {self.name!r}: parameter {key!r} "
                                f"expects an integer, got {value!r}"
                            )
                        value = int(value)
                elif not isinstance(value, type(default)):
                    raise ConfigurationError(
                        f"scenario {self.name!r}: parameter {key!r} expects "
                        f"{type(default).__name__}, got {value!r}"
                    )
            merged[key] = value
        return merged

    def instantiate(
        self,
        params: Optional[Mapping[str, Any]] = None,
        *,
        seed: int = 0,
    ) -> ScenarioInstance:
        """Build the deterministic instance for (params, seed)."""
        merged = self.merge_params(params)
        streams = RandomStreams(seed).fork(f"scenario:{self.name}")
        network = self.topology(merged)
        metadata: Dict[str, Any] = {}
        failed: Tuple[Tuple[str, str], ...] = ()
        if self.failures is not None:
            failed = self.failures.apply(network, streams.stream("failures"))
            metadata["failures_requested"] = self.failures.n_failures
            metadata["failures_applied"] = len(failed)
        workload = self.workload(network, merged, streams)
        timeline: Optional[FaultTimeline] = None
        if self.fault_profile is not None:
            profile = self.fault_profile.resolved(merged)
            timeline = build_timeline(
                profile, network, streams.stream("fault-timeline")
            )
            metadata["fault_events_drawn"] = timeline.fail_count
        return ScenarioInstance(
            spec=self,
            params=merged,
            seed=seed,
            network=network,
            workload=workload,
            streams=streams,
            failed_links=failed,
            fault_timeline=timeline,
            metadata=metadata,
        )
