"""Trace-shaped workload series: load, save, synthesise, modulate.

Closed-form workloads miss what aggregate traffic actually looks like:
MAWI/CAIDA-style captures show heavy-tailed per-epoch rates riding a
diurnal cycle, punctuated by flash crowds.  This module makes that
phenomenology a first-class workload input:

* :class:`TraceSeries` — a per-epoch (arrival count, mean demand)
  series, loadable from CSV/JSON captures and savable back;
* :func:`synthesize_mawi` — a deterministic synthesiser emitting a
  MAWI-like series (log-free: Pareto burst multipliers over a sinusoidal
  diurnal envelope) from a handful of reported parameters and one named
  RNG stream;
* :func:`diurnal_arrivals` / :func:`flash_crowd` — modulators that
  re-time any task list: the first warps arrivals through a sinusoidal
  intensity (an RNG-free measure change, so it composes with any base
  workload without perturbing its streams), the second re-times a
  random fraction of tasks into one tight spike window.

Everything here is a pure function of its inputs; the scenario layer
(:mod:`repro.scenarios.workloads`) wires these into registered workload
builders.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
import os
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..tasks.aitask import AITask


@dataclass(frozen=True)
class TraceSeries:
    """A per-epoch arrival/demand series.

    Attributes:
        name: series label (file stem for loaded traces).
        epoch_ms: epoch duration; epoch ``e`` spans
            ``[e * epoch_ms, (e + 1) * epoch_ms)``.
        arrivals: tasks arriving in each epoch.
        demand_gbps: mean per-task demand of each epoch's arrivals.
    """

    name: str
    epoch_ms: float
    arrivals: Tuple[int, ...]
    demand_gbps: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not (
            isinstance(self.epoch_ms, (int, float))
            and not isinstance(self.epoch_ms, bool)
            and math.isfinite(self.epoch_ms)
            and self.epoch_ms > 0
        ):
            raise ConfigurationError(
                f"trace epoch_ms must be a finite number > 0, "
                f"got {self.epoch_ms!r}"
            )
        if not self.arrivals:
            raise ConfigurationError("a trace needs at least one epoch")
        if len(self.arrivals) != len(self.demand_gbps):
            raise ConfigurationError(
                f"trace {self.name!r}: {len(self.arrivals)} arrival epochs "
                f"vs {len(self.demand_gbps)} demand epochs"
            )
        for count in self.arrivals:
            if isinstance(count, bool) or not isinstance(count, int) or count < 0:
                raise ConfigurationError(
                    f"trace {self.name!r}: arrivals must be ints >= 0, "
                    f"got {count!r}"
                )
        if self.total_tasks < 1:
            raise ConfigurationError(
                f"trace {self.name!r}: needs at least one arrival"
            )
        for demand in self.demand_gbps:
            if (
                isinstance(demand, bool)
                or not isinstance(demand, (int, float))
                or not math.isfinite(demand)
                or demand <= 0
            ):
                raise ConfigurationError(
                    f"trace {self.name!r}: demands must be finite numbers "
                    f"> 0 Gbps, got {demand!r}"
                )

    @property
    def n_epochs(self) -> int:
        return len(self.arrivals)

    @property
    def total_tasks(self) -> int:
        return sum(self.arrivals)

    @property
    def horizon_ms(self) -> float:
        return self.n_epochs * self.epoch_ms


# ---------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------

def save_trace(series: TraceSeries, path: str) -> None:
    """Write a series to ``path`` (format chosen by extension).

    ``.json`` writes a single object; ``.csv`` writes one row per epoch
    with ``epoch_ms`` repeated as a column (CSV has no header metadata).
    Floats round-trip exactly — Python's float repr is shortest-exact.
    """
    ext = os.path.splitext(path)[1].lower()
    if ext == ".json":
        payload = {
            "name": series.name,
            "epoch_ms": series.epoch_ms,
            "epochs": [
                {"arrivals": count, "demand_gbps": demand}
                for count, demand in zip(series.arrivals, series.demand_gbps)
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    elif ext == ".csv":
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["epoch_ms", "arrivals", "demand_gbps"])
            for count, demand in zip(series.arrivals, series.demand_gbps):
                writer.writerow([repr(float(series.epoch_ms)), count, repr(float(demand))])
    else:
        raise ConfigurationError(
            f"trace files must be .json or .csv, got {path!r}"
        )


def load_trace(path: str) -> TraceSeries:
    """Read a series from a ``.json`` or ``.csv`` file (see :func:`save_trace`)."""
    ext = os.path.splitext(path)[1].lower()
    name = os.path.splitext(os.path.basename(path))[0]
    if not os.path.exists(path):
        raise ConfigurationError(f"trace file not found: {path!r}")
    if ext == ".json":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise ConfigurationError(
                    f"trace file {path!r} is not valid JSON: {exc}"
                ) from None
        if not isinstance(payload, dict) or "epochs" not in payload:
            raise ConfigurationError(
                f"trace file {path!r}: expected an object with an "
                "'epochs' list"
            )
        epochs = payload["epochs"]
        try:
            arrivals = tuple(int(epoch["arrivals"]) for epoch in epochs)
            demands = tuple(float(epoch["demand_gbps"]) for epoch in epochs)
            epoch_ms = float(payload["epoch_ms"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"trace file {path!r}: malformed epoch entry: {exc}"
            ) from None
        return TraceSeries(
            name=str(payload.get("name", name)),
            epoch_ms=epoch_ms,
            arrivals=arrivals,
            demand_gbps=demands,
        )
    if ext == ".csv":
        rows: List[Tuple[float, int, float]] = []
        with open(path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.DictReader(handle)
            for line, row in enumerate(reader, start=2):
                try:
                    rows.append(
                        (
                            float(row["epoch_ms"]),
                            int(row["arrivals"]),
                            float(row["demand_gbps"]),
                        )
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise ConfigurationError(
                        f"trace file {path!r} line {line}: {exc}"
                    ) from None
        if not rows:
            raise ConfigurationError(f"trace file {path!r} has no epochs")
        epoch_values = {epoch for epoch, _, _ in rows}
        if len(epoch_values) != 1:
            raise ConfigurationError(
                f"trace file {path!r}: epoch_ms must be constant, "
                f"got {sorted(epoch_values)}"
            )
        return TraceSeries(
            name=name,
            epoch_ms=rows[0][0],
            arrivals=tuple(count for _, count, _ in rows),
            demand_gbps=tuple(demand for _, _, demand in rows),
        )
    raise ConfigurationError(f"trace files must be .json or .csv, got {path!r}")


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SynthConfig:
    """Parameters of the MAWI-like synthesiser.

    Attributes:
        epochs: series length.
        epoch_ms: epoch duration.
        mean_arrivals: long-run mean arrivals per epoch (pre-modulation).
        mean_demand_gbps: long-run mean per-task demand.
        pareto_alpha: tail index of the per-epoch burst multipliers
            (must exceed 1 for a finite mean; smaller = heavier tail).
        diurnal_amplitude: depth of the sinusoidal diurnal cycle, in
            [0, 1): epoch rates swing between ``1 - A`` and ``1 + A``
            times the mean.
        diurnal_period_epochs: epochs per diurnal cycle.
        max_arrivals_per_epoch: hard cap on one epoch's arrivals (keeps
            a single heavy-tail draw from exploding the task count).
    """

    epochs: int = 24
    epoch_ms: float = 1_000.0
    mean_arrivals: float = 2.0
    mean_demand_gbps: float = 10.0
    pareto_alpha: float = 1.8
    diurnal_amplitude: float = 0.6
    diurnal_period_epochs: int = 24
    max_arrivals_per_epoch: int = 50

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.epoch_ms <= 0:
            raise ConfigurationError(
                f"epoch_ms must be > 0, got {self.epoch_ms}"
            )
        if self.mean_arrivals <= 0:
            raise ConfigurationError(
                f"mean_arrivals must be > 0, got {self.mean_arrivals}"
            )
        if self.mean_demand_gbps <= 0:
            raise ConfigurationError(
                f"mean_demand_gbps must be > 0, got {self.mean_demand_gbps}"
            )
        if self.pareto_alpha <= 1.0:
            raise ConfigurationError(
                f"pareto_alpha must be > 1 for a finite mean, "
                f"got {self.pareto_alpha}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"diurnal_amplitude must lie in [0, 1), "
                f"got {self.diurnal_amplitude}"
            )
        if self.diurnal_period_epochs < 2:
            raise ConfigurationError(
                f"diurnal_period_epochs must be >= 2, "
                f"got {self.diurnal_period_epochs}"
            )
        if self.max_arrivals_per_epoch < 1:
            raise ConfigurationError(
                f"max_arrivals_per_epoch must be >= 1, "
                f"got {self.max_arrivals_per_epoch}"
            )


def synthesize_mawi(config: SynthConfig, rng) -> TraceSeries:
    """Draw a MAWI-like per-epoch series from ``rng``.

    Each epoch's arrival rate is the long-run mean times a sinusoidal
    diurnal factor times an independent mean-one Pareto burst
    multiplier — heavy-tailed rates on a diurnal envelope, the two
    leading-order phenomena of aggregate Internet traffic.  The
    fractional part of each rate is resolved with one Bernoulli draw so
    expected counts match the rate without a Poisson sampler.  Demands
    get their own Pareto multiplier per epoch.  At least one task is
    guaranteed (an all-quiet series is not a workload).
    """
    alpha = config.pareto_alpha
    mean_one = (alpha - 1.0) / alpha  # scales paretovariate to mean 1
    arrivals: List[int] = []
    demands: List[float] = []
    for epoch in range(config.epochs):
        diurnal = 1.0 + config.diurnal_amplitude * math.sin(
            2.0 * math.pi * epoch / config.diurnal_period_epochs
        )
        burst = mean_one * rng.paretovariate(alpha)
        rate = config.mean_arrivals * diurnal * burst
        count = int(rate)
        if rng.random() < rate - count:
            count += 1
        arrivals.append(min(config.max_arrivals_per_epoch, count))
        demand_burst = mean_one * rng.paretovariate(alpha)
        demands.append(round(config.mean_demand_gbps * demand_burst, 6))
    if sum(arrivals) < 1:
        arrivals[0] = 1
    return TraceSeries(
        name="mawi-synth",
        epoch_ms=config.epoch_ms,
        arrivals=tuple(arrivals),
        demand_gbps=tuple(demands),
    )


# ---------------------------------------------------------------------------
# Modulators
# ---------------------------------------------------------------------------

def _warp_time(t: float, period_ms: float, amplitude: float) -> float:
    """Solve ``Lambda(s) = t`` for the sinusoidal cumulative intensity.

    With intensity ``lambda(s) = 1 + A sin(2 pi s / P)`` the cumulative
    ``Lambda(s) = s + (A P / 2 pi)(1 - cos(2 pi s / P))`` is strictly
    increasing for ``A < 1``; mapping each homogeneous arrival ``t`` to
    ``s = Lambda^{-1}(t)`` yields arrivals whose density follows the
    intensity (the standard time-change), deterministically — no RNG.
    """
    swing = amplitude * period_ms / math.pi  # |Lambda(s) - s| <= swing
    lo, hi = max(0.0, t - swing), t + swing

    def cumulative(s: float) -> float:
        return s + (amplitude * period_ms / (2.0 * math.pi)) * (
            1.0 - math.cos(2.0 * math.pi * s / period_ms)
        )

    for _ in range(60):
        mid = (lo + hi) / 2.0
        if cumulative(mid) < t:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def diurnal_arrivals(
    tasks: Sequence[AITask], *, period_ms: float, amplitude: float
) -> Tuple[AITask, ...]:
    """Re-time arrivals through a sinusoidal diurnal intensity.

    A deterministic measure change: the relative order of arrivals is
    preserved while their density swings between ``1 - A`` and
    ``1 + A`` across each period.  RNG-free, so it composes over any
    base workload without shifting its named streams.
    """
    if period_ms <= 0:
        raise ConfigurationError(
            f"diurnal period_ms must be > 0, got {period_ms}"
        )
    if not 0.0 <= amplitude < 1.0:
        raise ConfigurationError(
            f"diurnal amplitude must lie in [0, 1), got {amplitude}"
        )
    return tuple(
        dataclasses.replace(
            task,
            arrival_ms=round(
                _warp_time(task.arrival_ms, period_ms, amplitude), 6
            ),
        )
        for task in tasks
    )


def flash_crowd(
    tasks: Sequence[AITask],
    rng,
    *,
    time_ms: float,
    width_ms: float,
    fraction: float,
) -> Tuple[AITask, ...]:
    """Re-time a random fraction of tasks into one tight spike window.

    Each task independently joins the crowd with probability
    ``fraction``; joiners arrive uniformly inside
    ``[time_ms, time_ms + width_ms)``.  Two draws per task — membership
    then offset — keep the draw count fixed regardless of outcomes, so
    one task's coin flip never shifts another's spike position.
    """
    if time_ms < 0:
        raise ConfigurationError(f"flash time_ms must be >= 0, got {time_ms}")
    if width_ms <= 0:
        raise ConfigurationError(
            f"flash width_ms must be > 0, got {width_ms}"
        )
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"flash fraction must lie in (0, 1], got {fraction}"
        )
    retimed: List[AITask] = []
    for task in tasks:
        joins = rng.random() < fraction
        offset = rng.random() * width_ms
        if joins:
            task = dataclasses.replace(
                task, arrival_ms=round(time_ms + offset, 6)
            )
        retimed.append(task)
    return tuple(retimed)


def epoch_arrival_times(
    series: TraceSeries, rng
) -> Tuple[float, ...]:
    """Concrete arrival instants for a series: uniform inside each epoch.

    Offsets are drawn per epoch and sorted within it, so arrivals are
    non-decreasing inside an epoch while the cross-epoch shape follows
    the series exactly.
    """
    times: List[float] = []
    for epoch, count in enumerate(series.arrivals):
        start = epoch * series.epoch_ms
        offsets = sorted(rng.random() for _ in range(count))
        times.extend(
            round(start + offset * series.epoch_ms, 6) for offset in offsets
        )
    return tuple(times)


def epoch_demands(series: TraceSeries) -> Tuple[float, ...]:
    """Per-task demand for each arrival, in arrival order."""
    demands: List[float] = []
    for count, demand in zip(series.arrivals, series.demand_gbps):
        demands.extend([demand] * count)
    return tuple(demands)
