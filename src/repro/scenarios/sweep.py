"""Parameter-grid expansion and the parallel sweep engine.

A sweep names one or more registered scenarios, a parameter grid, and a
seed list; the engine expands the cross product into :class:`RunKey`\\ s,
fans the missing runs out over a ``multiprocessing`` pool, and collects
everything into one :class:`~repro.experiments.results.ExperimentResult`.

Three properties the tests pin down:

* **Determinism** — every run derives its randomness from a
  :class:`~repro.sim.rng.RandomStreams` fork of ``(scenario, seed)``, so
  a 2-worker pool produces byte-identical rows to a serial run.
* **Order independence** — rows are assembled in run-key order, not in
  completion order.
* **Resume** — with a ``cache_dir``, finished runs persist as one JSON
  file each, keyed by a hash of (scenario, params, seed); a rerun loads
  them instead of recomputing.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import os
import pickle
import sys
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.fixed import FixedScheduler
from ..core.flexible import FlexibleScheduler
from ..errors import ConfigurationError
from ..orchestrator.campaign import campaign_runner_for, orchestrator_for
from ..orchestrator.database import TaskStatus
from .registry import get_scenario, register
from .spec import ScenarioInstance

#: Parameter grid: name -> candidate values.
Grid = Mapping[str, Sequence[Any]]
#: One measurement row (mirrors repro.experiments.results.Row, which is
#: imported lazily inside run_sweep to avoid a package-level cycle).
Row = Dict[str, Any]


@dataclass(frozen=True)
class RunKey:
    """The identity of one sweep run: (scenario, params, seed).

    ``params`` is stored as sorted items so keys are hashable, orderable,
    and canonically serialisable.
    """

    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    seed: int

    @classmethod
    def make(cls, scenario: str, params: Mapping[str, Any], seed: int) -> "RunKey":
        return cls(
            scenario=scenario,
            params=tuple(sorted(params.items())),
            seed=int(seed),
        )

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def canonical(self) -> str:
        """A stable JSON encoding of the key (cache/cache-file identity)."""
        return json.dumps(
            {
                "scenario": self.scenario,
                "params": self.params_dict(),
                "seed": self.seed,
            },
            sort_keys=True,
            default=str,
        )

    def token(self) -> str:
        """Filesystem-safe digest of :meth:`canonical`."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class SweepConfig:
    """What to sweep.

    Attributes:
        scenarios: registered scenario names (each validated up front).
        grid: parameter name -> values; the cross product is taken.  Every
            name must be a parameter of every swept scenario.
        seeds: replication seeds; each grid point runs once per seed.
    """

    scenarios: Tuple[str, ...]
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("a sweep needs at least one scenario")
        if not self.seeds:
            raise ConfigurationError("a sweep needs at least one seed")
        for values in self.grid.values():
            if not values:
                raise ConfigurationError(
                    "every grid dimension needs at least one value"
                )


def expand_grid(grid: Grid) -> List[Dict[str, Any]]:
    """The cross product of a grid, in sorted-key lexicographic order.

    An empty grid yields one empty parameter dict (the scenario defaults).
    """
    names = sorted(grid)
    combos = itertools.product(*(grid[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def expand_runs(config: SweepConfig) -> List[RunKey]:
    """Every RunKey of a sweep, validated against each scenario's params.

    Keys carry the *merged* parameters (defaults overlaid with the grid
    point), not just the overrides: merging validates unknown keys and
    bad types up front, and it makes the resume-cache identity sensitive
    to a scenario's defaults — edit a default and cached rows for the
    old definition stop matching instead of being served silently.
    """
    keys: List[RunKey] = []
    for name in config.scenarios:
        spec = get_scenario(name)
        for params in expand_grid(config.grid):
            for seed in config.seeds:
                keys.append(RunKey.make(name, spec.merge_params(params), seed))
    return keys


# ---------------------------------------------------------------------------
# Executing one run
# ---------------------------------------------------------------------------

def _scalar(value: Any) -> Any:
    """Parameters as row columns: keep JSON scalars, stringify the rest."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _serve(instance: ScenarioInstance, scheduler) -> Row:
    """Serve the instance's workload one task at a time; aggregate metrics."""
    orchestrator = orchestrator_for(instance, scheduler)
    round_ms: List[float] = []
    bandwidth: List[float] = []
    blocked = 0
    for task in instance.workload:
        record = orchestrator.admit(task)
        if record.status is not TaskStatus.RUNNING:
            blocked += 1
            continue
        report = orchestrator.evaluate(task.task_id)
        round_ms.append(report.round_latency.total_ms)
        bandwidth.append(report.consumed_bandwidth_gbps)
        orchestrator.complete(task.task_id)
    served = len(round_ms)

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return {
        "scheduler": scheduler.name,
        "served": served,
        "blocked": blocked,
        "round_ms": mean(round_ms),
        "bandwidth_gbps": mean(bandwidth),
        "failed_links": len(instance.failed_links),
    }


def _serve_campaign(instance: ScenarioInstance, scheduler) -> Row:
    """Play the workload's full arrival timeline on the simulation engine.

    Used for ``serve="campaign"`` scenarios (the bursty families): tasks
    arrive at their generated times and contend for capacity, so burst
    parameters actually shape the results — ``makespan_ms`` most of all.
    When the instance carries a fault timeline it is played interleaved
    with the arrivals, and the run's availability metrics (downtime,
    interruptions, reschedules, time-to-recover) become row columns.
    """
    outcome = campaign_runner_for(instance, scheduler).run()
    row = {
        "scheduler": scheduler.name,
        "served": outcome.completed,
        "blocked": outcome.blocked,
        "round_ms": outcome.mean_round_ms,
        "makespan_ms": outcome.makespan_ms,
        "failed_links": len(instance.failed_links),
    }
    if outcome.availability is not None:
        row.update(outcome.availability)
    return row


def execute_run(key: RunKey) -> List[Row]:
    """Run one (scenario, params, seed) under both schedulers.

    Each scheduler gets a freshly instantiated scenario (identical seed,
    hence identical network/failures/workload), mirroring the fig. 3
    protocol.  Top-level so pool workers can unpickle it.
    """
    spec = get_scenario(key.scenario)
    serve = _serve_campaign if spec.serve == "campaign" else _serve
    prefix = {"scenario": key.scenario, "seed": key.seed}
    prefix.update(
        (name, _scalar(value)) for name, value in sorted(key.params)
    )
    rows: List[Row] = []
    for scheduler in (FixedScheduler(), FlexibleScheduler()):
        instance = spec.instantiate(key.params_dict(), seed=key.seed)
        rows.append({**prefix, **serve(instance, scheduler)})
    return rows


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------

def _init_worker(paths: List[str], pickled_specs: bytes) -> None:
    """Prepare a pool worker: import paths plus non-builtin scenarios.

    Fork-started workers inherit everything; spawn-started workers get a
    fresh interpreter that only knows the built-in catalogue, so any
    user-registered specs the sweep references ride along pickled.
    """
    for path in reversed(paths):
        if path not in sys.path:
            sys.path.insert(0, path)
    for spec in pickle.loads(pickled_specs):
        register(spec, replace=True)


def _pool_context() -> Tuple[str, Any]:
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else "spawn"
    return method, multiprocessing.get_context(method)


def _cache_path(cache_dir: str, key: RunKey) -> str:
    return os.path.join(cache_dir, f"run-{key.token()}.json")


def _load_cached(cache_dir: str, key: RunKey) -> Optional[List[Row]]:
    path = _cache_path(cache_dir, key)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("key") != key.canonical():
        return None
    rows = payload.get("rows")
    return rows if isinstance(rows, list) else None


class _JsonlSink:
    """Streaming JSONL result sink (the first slice of ROADMAP's
    "Streaming result sinks" item).

    One line per row, *appended run-by-run as results arrive*, so a
    million-run sweep never has to hold every row before the first byte
    lands on disk and an interrupted sweep keeps what it finished.  Rows
    stream in run-key submission order (cached runs first), which keeps
    the file deterministic for a given configuration.

    The file is truncated at open: cached runs are re-emitted on a
    resume, so appending across invocations would double-count every
    run finished before an interruption.  Each invocation therefore
    leaves one complete, duplicate-free row set.
    """

    def __init__(self, path: str) -> None:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "w", encoding="utf-8")

    def write_run(self, rows: List[Row]) -> None:
        for row in rows:
            self._handle.write(json.dumps(row, sort_keys=True, default=str))
            self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


def _store_cached(cache_dir: str, key: RunKey, rows: List[Row]) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    payload = {"key": key.canonical(), "rows": rows}
    path = _cache_path(cache_dir, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)


def run_sweep(
    config: SweepConfig,
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    name: str = "sweep",
    jsonl_path: Optional[str] = None,
) -> "ExperimentResult":
    """Execute a sweep and collect every run's rows, in run-key order.

    Args:
        config: scenarios × grid × seeds to expand.
        workers: pool size; ``1`` runs serially in-process.  Results are
            identical either way — only wall-clock differs.
        cache_dir: when given, finished runs are persisted there and
            reruns load them instead of recomputing (resume-on-rerun).
        name: the returned :class:`ExperimentResult`'s name.
        jsonl_path: when given, every run's rows are appended to this
            JSONL file as the run completes (cache hits first), so
            partial progress survives interruption and huge sweeps never
            buffer the whole result before writing.  The file is
            rewritten per invocation (cached runs are re-emitted), so a
            resumed sweep ends with one complete, duplicate-free file.
    """
    from ..experiments.results import ExperimentResult

    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    keys = expand_runs(config)
    rows_by_key: Dict[RunKey, List[Row]] = {}
    if cache_dir is not None:
        for key in keys:
            cached = _load_cached(cache_dir, key)
            if cached is not None:
                rows_by_key[key] = cached
    missing = [key for key in keys if key not in rows_by_key]

    sink = _JsonlSink(jsonl_path) if jsonl_path is not None else None
    try:
        if sink is not None:
            for key in keys:
                if key in rows_by_key:
                    sink.write_run(rows_by_key[key])

        def record(key: RunKey, rows: List[Row]) -> None:
            rows_by_key[key] = rows
            if cache_dir is not None:
                _store_cached(cache_dir, key, rows)
            if sink is not None:
                sink.write_run(rows)

        if missing:
            parallel = workers > 1 and len(missing) > 1
            extra_specs: bytes = pickle.dumps([])
            if parallel:
                method, ctx = _pool_context()
                if method != "fork":
                    # Spawn workers start from a fresh interpreter that only
                    # knows the built-in catalogue after import.  Ship every
                    # swept spec along (module-level callables pickle by
                    # reference); fall back to serial when one can't be
                    # pickled, e.g. a closure-built user scenario.
                    swept = {key.scenario: get_scenario(key.scenario) for key in missing}
                    try:
                        extra_specs = pickle.dumps(list(swept.values()))
                    except (pickle.PicklingError, AttributeError, TypeError) as exc:
                        warnings.warn(
                            f"sweep falls back to serial execution: a swept "
                            f"scenario spec cannot be pickled for spawn-started "
                            f"workers ({exc}); define its builders at module "
                            f"level to enable the pool",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        parallel = False
            if not parallel:
                for key in missing:
                    record(key, execute_run(key))
            else:
                with ctx.Pool(
                    processes=min(workers, len(missing)),
                    initializer=_init_worker,
                    initargs=(list(sys.path), extra_specs),
                ) as pool:
                    # imap streams results back in submission order, so
                    # cache files and JSONL lines land run-by-run instead
                    # of all at once when the slowest worker finishes.
                    for key, rows in zip(missing, pool.imap(execute_run, missing)):
                        record(key, rows)
    finally:
        if sink is not None:
            sink.close()

    result = ExperimentResult(
        name=name,
        description=(
            "scenario sweep over "
            + ", ".join(config.scenarios)
        ),
        parameters={
            "scenarios": list(config.scenarios),
            "grid": {k: list(v) for k, v in sorted(config.grid.items())},
            "seeds": list(config.seeds),
        },
    )
    for key in keys:
        for row in rows_by_key[key]:
            result.add(**row)
    return result
