"""Execution backends: *where* a sweep's runs actually execute.

The engine decides *what* to run (missing :class:`RunKey`\\ s, in
submission order) and how to record results; a backend only has to run
every key and call ``emit(key, rows)`` once per key, in any order and
from any thread — :class:`~repro.scenarios.sweep.engine.OrderedRecorder`
re-sequences on the engine side.  Three implementations ship:

* :class:`SerialBackend` — in-process, one run at a time.
* :class:`ProcessPoolBackend` — the historical ``workers=N`` behaviour:
  a ``multiprocessing`` pool streaming results back in submission order,
  byte-identical to serial.
* :class:`~repro.scenarios.sweep.distributed.SocketQueueBackend` — a
  work-stealing coordinator over TCP sockets (its own module).
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import pickle
import sys
import time
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...errors import ConfigurationError
from ...obs.collect import TraceCollector, TraceContext, collect_run
from ...reporting import Row
from ..registry import get_scenario, register
from .engine import RunKey, execute_run

#: A backend's result channel: called once per key, any order, any thread.
EmitFn = Callable[[RunKey, List[Row]], None]


class SweepBackend(abc.ABC):
    """Executes a batch of sweep runs and reports each run's rows.

    Contract: ``execute`` must call ``emit(key, rows)`` exactly once for
    every key (duplicates are tolerated but ignored), may do so in any
    order and from any thread, and must not return before every key has
    been reported or an error raised.
    """

    #: Short name used by the CLI's ``--backend`` flag.
    name: str = "?"

    @abc.abstractmethod
    def execute(
        self,
        keys: Sequence[RunKey],
        emit: EmitFn,
        *,
        cache_dir: Optional[str] = None,
        collector: Optional[TraceCollector] = None,
    ) -> None:
        """Run every key, reporting rows through ``emit``.

        ``cache_dir`` is advisory: the engine already persists whatever
        ``emit`` delivers, but distributed backends may announce the
        directory to remote workers so results also land in the shared
        per-run cache straight from the worker.

        ``collector`` turns on distributed trace collection: each run
        executes under a per-run capture registry
        (:func:`repro.obs.collect.collect_run`) and its record chunk is
        merged through ``collector.add_chunk`` — strictly out-of-band,
        rows are byte-identical either way.  The engine omits the
        keyword entirely when collection is off, so pre-existing
        third-party backends keep working unchanged.
        """


class SerialBackend(SweepBackend):
    """One run at a time, in-process — the reference implementation."""

    name = "serial"

    def execute(
        self,
        keys: Sequence[RunKey],
        emit: EmitFn,
        *,
        cache_dir: Optional[str] = None,
        collector: Optional[TraceCollector] = None,
    ) -> None:
        if collector is None:
            for key in keys:
                emit(key, execute_run(key))
            return
        for key in keys:
            context = collector.context_for(key)
            request_s = time.time()
            rows, chunk = collect_run(
                execute_run, (key,), context=context, worker="serial"
            )
            collector.add_chunk(
                chunk, request_s=request_s, response_s=time.time()
            )
            emit(key, rows)


# ---------------------------------------------------------------------------
# Worker bootstrap shared by the pool and socket backends
# ---------------------------------------------------------------------------

def install_shipped_specs(pickled_specs: bytes) -> None:
    """Register scenario specs shipped from a sweep coordinator.

    Fresh interpreters (spawn-started pool workers, remote socket
    workers) only know the built-in catalogue after import; any swept
    user-registered specs ride along pickled and are installed here.
    """
    for spec in pickle.loads(pickled_specs):
        register(spec, replace=True)


def _init_worker(paths: List[str], pickled_specs: bytes) -> None:
    """Prepare a pool worker: import paths plus non-builtin scenarios.

    Fork-started workers inherit everything; spawn-started workers get a
    fresh interpreter, so the parent's ``sys.path`` and any swept
    user-registered specs ride along.
    """
    for path in reversed(paths):
        if path not in sys.path:
            sys.path.insert(0, path)
    install_shipped_specs(pickled_specs)


def pickled_sweep_specs(keys: Sequence[RunKey]) -> bytes:
    """Every swept scenario's spec, pickled for shipping to workers.

    Module-level builders pickle by reference; a closure-built user
    scenario raises (``PicklingError``/``AttributeError``/``TypeError``)
    and the caller decides how to degrade.
    """
    swept = {key.scenario: get_scenario(key.scenario) for key in keys}
    return pickle.dumps(list(swept.values()))


def _pool_context() -> Tuple[str, Any]:
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else "spawn"
    return method, multiprocessing.get_context(method)


def _execute_collected(
    item: Tuple[RunKey, Dict[str, Any]]
) -> Tuple[List[Row], Dict[str, Any]]:
    """Pool-worker entry point for a collected run (must be top-level).

    The context crosses the pool boundary in wire form (plain dicts
    pickle fine and match the socket path), and the chunk rides back as
    the second element of the result tuple.
    """
    key, wire = item
    context = TraceContext.from_wire(wire)
    return collect_run(
        execute_run, (key,), context=context, worker=f"pool-{os.getpid()}"
    )


class ProcessPoolBackend(SweepBackend):
    """A local ``multiprocessing`` pool, byte-identical to serial.

    ``imap`` streams results back in submission order, so cache files
    and sink writes land run-by-run instead of all at once when the
    slowest worker finishes.  Degenerate batches (one run, one worker)
    and unpicklable swept specs fall back to the serial backend.
    """

    name = "pool"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def execute(
        self,
        keys: Sequence[RunKey],
        emit: EmitFn,
        *,
        cache_dir: Optional[str] = None,
        collector: Optional[TraceCollector] = None,
    ) -> None:
        if self.workers < 2 or len(keys) < 2:
            SerialBackend().execute(
                keys, emit, cache_dir=cache_dir, collector=collector
            )
            return
        method, ctx = _pool_context()
        extra_specs: bytes = pickle.dumps([])
        if method != "fork":
            # Spawn workers start from a fresh interpreter that only
            # knows the built-in catalogue after import.  Ship every
            # swept spec along; fall back to serial when one can't be
            # pickled, e.g. a closure-built user scenario.
            try:
                extra_specs = pickled_sweep_specs(keys)
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                warnings.warn(
                    f"sweep falls back to serial execution: a swept "
                    f"scenario spec cannot be pickled for spawn-started "
                    f"workers ({exc}); define its builders at module "
                    f"level to enable the pool",
                    RuntimeWarning,
                    stacklevel=2,
                )
                SerialBackend().execute(
                    keys, emit, cache_dir=cache_dir, collector=collector
                )
                return
        with ctx.Pool(
            processes=min(self.workers, len(keys)),
            initializer=_init_worker,
            initargs=(list(sys.path), extra_specs),
        ) as pool:
            if collector is None:
                for key, rows in zip(keys, pool.imap(execute_run, list(keys))):
                    emit(key, rows)
                return
            # Dispatch instants are not observable through imap, so the
            # pool path ships no request/response samples: chunks merge
            # unshifted (same-host workers share the clock anyway) and
            # queue wait is reported only where dispatch events exist.
            items = [
                (key, collector.context_for(key).as_wire()) for key in keys
            ]
            for key, (rows, chunk) in zip(
                keys, pool.imap(_execute_collected, items)
            ):
                collector.add_chunk(chunk)
                emit(key, rows)


def resolve_backend(
    backend: Optional[Any], *, workers: int = 1
) -> SweepBackend:
    """Turn ``run_sweep``'s ``backend`` argument into an instance.

    ``None`` reproduces the historical behaviour exactly: a pool when
    ``workers > 1``, serial otherwise.  Strings name a backend kind,
    sized by ``workers`` (``"socket"`` gets that many in-process worker
    threads so it is self-contained; external workers can still join).
    """
    if backend is None:
        if workers > 1:
            return ProcessPoolBackend(workers)
        return SerialBackend()
    if isinstance(backend, SweepBackend):
        return backend
    if isinstance(backend, str):
        if backend == "serial":
            return SerialBackend()
        if backend == "pool":
            return ProcessPoolBackend(workers if workers > 1 else 2)
        if backend == "socket":
            from .distributed import SocketQueueBackend

            return SocketQueueBackend(local_workers=max(1, workers))
        raise ConfigurationError(
            f"unknown backend {backend!r}; valid: serial, pool, socket"
        )
    raise ConfigurationError(
        f"backend must be None, a name, or a SweepBackend, got {backend!r}"
    )
