"""Result sinks: where a sweep's rows land as runs complete.

The engine streams every finished run — cache hits first, then fresh
runs in run-key order — through each attached :class:`ResultSink`, so a
million-run sweep never buffers the whole result before the first byte
hits storage and an interrupted sweep keeps what it finished.  Four
implementations ship:

* :class:`JsonlSink` — one JSON line per row, appended run-by-run (the
  original streaming sink).
* :class:`JsonSink` — one complete JSON document written at close.
* :class:`CsvSink` — one spreadsheet-ready CSV, streamed run-by-run
  with a deterministic widening header.
* :class:`SqliteSink` — a queryable SQLite schema (``runs`` / ``rows`` /
  ``row_metrics``) with *incremental* running-mean aggregation: the
  ``aggregates`` table is updated as rows stream in, not reduced
  post-hoc, and always matches a post-hoc reduction of the streamed
  rows.
"""

from __future__ import annotations

import abc
import csv
import json
import os
import sqlite3
from typing import Any, Dict, List, Optional, Tuple

from ...errors import ConfigurationError
from ...reporting import Row
from .engine import RunKey

#: Sink kinds the CLI's ``--sink`` flag accepts.
SINK_KINDS = ("csv", "json", "jsonl", "sqlite")


class ResultSink(abc.ABC):
    """Receives every run's rows as the run completes, in run-key order.

    Lifecycle: the engine calls :meth:`open` once before the first run,
    :meth:`write_run` once per run (cached runs are re-emitted on a
    resume, so each invocation sees the *complete* row stream), and
    :meth:`close` in a ``finally`` block.
    """

    #: Short name used by the CLI's ``--sink`` flag.
    name: str = "?"

    def open(self) -> None:  # noqa: B027 - optional hook
        """Prepare the sink (create files/tables, reset state)."""

    @abc.abstractmethod
    def write_run(self, key: RunKey, rows: List[Row]) -> None:
        """Persist one finished run's rows."""

    def close(self) -> None:  # noqa: B027 - optional hook
        """Flush and release resources after a *completed* sweep."""

    def abort(self) -> None:
        """Release resources after a *failed* sweep.

        Default: close normally — streaming sinks keep the partial
        output they already wrote, which is honest (and resumable).
        Sinks whose close() would fabricate a complete-looking artifact
        from partial data must override this to skip that write.
        """
        self.close()


class JsonlSink(ResultSink):
    """Streaming JSONL sink: one line per row, appended run-by-run.

    The file is truncated at open: cached runs are re-emitted on a
    resume, so appending across invocations would double-count every
    run finished before an interruption.  Each invocation therefore
    leaves one complete, duplicate-free row set.
    """

    name = "jsonl"

    def __init__(self, path: str) -> None:
        self._path = path
        self._handle: Optional[Any] = None

    def open(self) -> None:
        directory = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(self._path, "w", encoding="utf-8")

    def write_run(self, key: RunKey, rows: List[Row]) -> None:
        for row in rows:
            self._handle.write(json.dumps(row, sort_keys=True, default=str))
            self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class JsonSink(ResultSink):
    """Buffers every row and writes one complete JSON document at close.

    A failed sweep writes nothing — and leaves nothing: a half-full
    document would be indistinguishable from a complete one, so on
    abort the buffered rows are dropped *and* any pre-existing file at
    the path (a complete document from an earlier sweep) is removed.
    Leaving it would let last week's output masquerade as this sweep's
    result; after an abort, no file at the path is the only honest
    state.
    """

    name = "json"

    def __init__(self, path: str) -> None:
        self._path = path
        self._rows: List[Row] = []

    def open(self) -> None:
        self._rows = []

    def write_run(self, key: RunKey, rows: List[Row]) -> None:
        self._rows.extend(rows)

    def close(self) -> None:
        directory = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(directory, exist_ok=True)
        with open(self._path, "w", encoding="utf-8") as handle:
            json.dump(
                {"rows": self._rows},
                handle,
                indent=2,
                sort_keys=True,
                default=str,
            )

    def abort(self) -> None:
        self._rows = []
        try:
            os.remove(self._path)
        except OSError:
            pass


class CsvSink(ResultSink):
    """Streaming CSV sink: one row per line under a widening header.

    CSV needs its column set before the first data line, but a sweep's
    full column union isn't known until the last run (campaign rows add
    availability metrics, different scenarios add different params), so
    the sink streams optimistically: the header is the sorted key set of
    the first run's rows, appended rows fill absent columns with ``""``,
    and a run that *introduces* columns triggers one rewrite of the file
    with the widened header (new columns appended in sorted order, so
    the column order is a pure function of the row stream).  Homogeneous
    sweeps — the common case — therefore stream with zero rewrites.

    Values: scalars land verbatim (booleans as ``true``/``false``,
    ``None`` as empty), anything structured as compact JSON.  Mirroring
    the JSONL sink, the file is truncated at open and each invocation
    leaves one complete, duplicate-free row set; on abort the rows
    already streamed stay on disk (honest partial output).  Nothing is
    buffered between calls — a widening rewrite recovers the earlier
    rows from the on-disk file itself, which is complete and flushed by
    construction, and streams row-by-row through a temp file — so memory
    stays O(one run) however long the sweep.
    """

    name = "csv"

    def __init__(self, path: str) -> None:
        self._path = path
        self._handle: Optional[Any] = None
        self._fieldnames: List[str] = []

    def open(self) -> None:
        directory = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(self._path, "w", encoding="utf-8", newline="")
        self._fieldnames = []

    @staticmethod
    def _cell(value: Any) -> str:
        if value is None:
            return ""
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float, str)):
            return str(value)
        return json.dumps(value, sort_keys=True, default=str)

    def _widen(self, fresh: List[str]) -> None:
        """Rewrite the file under the widened header, keeping old rows.

        Streams old rows one at a time through a temp file, so even the
        rewrite never holds more than one row in memory.  A rewrite that
        raises mid-stream must not wound the sink: the temp file is
        removed, the header stays un-widened (the on-disk file was never
        replaced), and the handle is reopened for appending before the
        error propagates — so the caller sees the failure but the sink
        remains usable and ``close()`` still releases a live handle.
        """
        self._handle.close()
        narrow = self._fieldnames
        widened = narrow + fresh
        temp = self._path + ".widen.tmp"
        try:
            with open(
                self._path, encoding="utf-8", newline=""
            ) as source, open(
                temp, "w", encoding="utf-8", newline=""
            ) as target:
                writer = csv.DictWriter(
                    target, fieldnames=widened, restval=""
                )
                writer.writeheader()
                for row in csv.DictReader(source):
                    writer.writerow(row)
            os.replace(temp, self._path)
        except BaseException:
            self._fieldnames = narrow
            try:
                os.remove(temp)
            except OSError:
                pass
            self._handle = open(self._path, "a", encoding="utf-8", newline="")
            raise
        self._fieldnames = widened
        self._handle = open(self._path, "a", encoding="utf-8", newline="")

    def write_run(self, key: RunKey, rows: List[Row]) -> None:
        encoded = [
            {field: self._cell(value) for field, value in row.items()}
            for row in rows
        ]
        fresh = sorted(
            {field for row in encoded for field in row}
            - set(self._fieldnames)
        )
        if fresh and self._fieldnames:
            self._widen(fresh)
        elif fresh:  # first run with any columns: emit the header
            self._fieldnames = fresh
            csv.DictWriter(
                self._handle, fieldnames=self._fieldnames
            ).writeheader()
        if self._fieldnames:
            csv.DictWriter(
                self._handle, fieldnames=self._fieldnames, restval=""
            ).writerows(encoded)
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class SqliteSink(ResultSink):
    """Queryable SQLite result store with incremental aggregation.

    Schema::

        runs(token PK, scenario, seed, serving, params, key)
        rows(run_token, row_index, scenario, seed, scheduler, data)
        row_metrics(run_token, row_index, metric, value)   -- numeric only
        aggregates(scenario, scheduler, metric, n, mean)

    Mirroring the JSONL sink's truncate-at-open semantics, every table
    is cleared at open and each invocation leaves exactly one complete,
    internally consistent result set: cached runs are re-emitted on a
    resume, so nothing is lost, and rows from an *earlier, different*
    sweep can never linger and disagree with the aggregates.  Within an
    invocation, ``runs``/``rows``/``row_metrics`` are keyed by the run
    token and a re-emitted run *replaces* its previous copy —
    duplicate-free by construction.  ``aggregates`` holds running means
    maintained *incrementally* as rows stream in
    (``mean += (x - mean) / n``); a replaced run's old values are
    *retracted* from the means first, so at close the table always
    equals a post-hoc reduction over ``row_metrics`` — even when a run
    is delivered twice (a socket worker's result landing after its
    disconnect re-queue).

    The connection allows cross-thread use because distributed backends
    deliver results from handler threads; the engine's ordered recorder
    already serialises all ``write_run`` calls.
    """

    name = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS runs (
            token    TEXT PRIMARY KEY,
            scenario TEXT NOT NULL,
            seed     INTEGER NOT NULL,
            serving  TEXT,
            params   TEXT NOT NULL,
            key      TEXT NOT NULL
        );
        CREATE TABLE IF NOT EXISTS rows (
            run_token TEXT NOT NULL,
            row_index INTEGER NOT NULL,
            scenario  TEXT NOT NULL,
            seed      INTEGER NOT NULL,
            scheduler TEXT,
            data      TEXT NOT NULL,
            PRIMARY KEY (run_token, row_index)
        );
        CREATE TABLE IF NOT EXISTS row_metrics (
            run_token TEXT NOT NULL,
            row_index INTEGER NOT NULL,
            metric    TEXT NOT NULL,
            value     REAL NOT NULL,
            PRIMARY KEY (run_token, row_index, metric)
        );
        CREATE TABLE IF NOT EXISTS aggregates (
            scenario  TEXT NOT NULL,
            scheduler TEXT NOT NULL,
            metric    TEXT NOT NULL,
            n         INTEGER NOT NULL,
            mean      REAL NOT NULL,
            PRIMARY KEY (scenario, scheduler, metric)
        );
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._conn: Optional[sqlite3.Connection] = None
        self._running: Dict[Tuple[str, str, str], Tuple[int, float]] = {}

    def open(self) -> None:
        directory = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(self._path, check_same_thread=False)
        with self._conn:
            self._conn.executescript(self._SCHEMA)
            # This invocation re-streams every run (cache hits included),
            # so the whole store rebuilds from scratch — stale rows from
            # a different earlier sweep would silently skew post-hoc
            # reductions against the aggregates.
            for table in ("runs", "rows", "row_metrics", "aggregates"):
                self._conn.execute(f"DELETE FROM {table}")
        self._running = {}

    def _retract(self, key: RunKey, token: str, touched: set) -> None:
        """Remove a previously delivered run's contribution to the means.

        A re-delivered run (e.g. a socket worker's result arriving after
        its disconnect re-queue) *replaces* its ``rows``/``row_metrics``
        copies, so its old metric values must leave the running means too
        — otherwise ``aggregates`` double-counts the run and stops
        matching a post-hoc reduction of ``row_metrics``.  Reverses the
        running-mean update (``mean -= (x - mean') / n`` inverted): with
        ``n`` samples at mean ``m``, removing ``x`` leaves
        ``(n*m - x) / (n - 1)``.
        """
        previous = self._conn.execute(
            "SELECT rows.scheduler, row_metrics.metric, row_metrics.value "
            "FROM row_metrics JOIN rows "
            "ON rows.run_token = row_metrics.run_token "
            "AND rows.row_index = row_metrics.row_index "
            "WHERE row_metrics.run_token = ?",
            (token,),
        ).fetchall()
        for scheduler, metric, value in previous:
            group = (key.scenario, str(scheduler), metric)
            n, mean = self._running[group]
            if n <= 1:
                del self._running[group]
            else:
                self._running[group] = (n - 1, (n * mean - value) / (n - 1))
            touched.add(group)

    def write_run(self, key: RunKey, rows: List[Row]) -> None:
        token = key.token()
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO runs "
                "(token, scenario, seed, serving, params, key) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    token,
                    key.scenario,
                    key.seed,
                    key.serving,
                    json.dumps(key.params_dict(), sort_keys=True, default=str),
                    key.canonical(),
                ),
            )
            touched: set = set()
            self._retract(key, token, touched)
            self._conn.execute("DELETE FROM rows WHERE run_token = ?", (token,))
            self._conn.execute(
                "DELETE FROM row_metrics WHERE run_token = ?", (token,)
            )
            for index, row in enumerate(rows):
                scheduler = row.get("scheduler")
                self._conn.execute(
                    "INSERT INTO rows "
                    "(run_token, row_index, scenario, seed, scheduler, data) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        token,
                        index,
                        key.scenario,
                        key.seed,
                        scheduler,
                        json.dumps(row, sort_keys=True, default=str),
                    ),
                )
                for metric, value in row.items():
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        continue
                    self._conn.execute(
                        "INSERT INTO row_metrics "
                        "(run_token, row_index, metric, value) "
                        "VALUES (?, ?, ?, ?)",
                        (token, index, metric, float(value)),
                    )
                    group = (key.scenario, str(scheduler), metric)
                    n, mean = self._running.get(group, (0, 0.0))
                    n += 1
                    mean += (float(value) - mean) / n
                    self._running[group] = (n, mean)
                    touched.add(group)
            for scenario, scheduler, metric in touched:
                group = self._running.get((scenario, scheduler, metric))
                if group is None:
                    # Retraction emptied the group (a re-delivery whose
                    # new rows no longer report the metric).
                    self._conn.execute(
                        "DELETE FROM aggregates WHERE scenario = ? "
                        "AND scheduler = ? AND metric = ?",
                        (scenario, scheduler, metric),
                    )
                    continue
                n, mean = group
                self._conn.execute(
                    "INSERT OR REPLACE INTO aggregates "
                    "(scenario, scheduler, metric, n, mean) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (scenario, scheduler, metric, n, mean),
                )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None


def read_aggregates(path: str) -> Dict[Tuple[str, str, str], Tuple[int, float]]:
    """The ``aggregates`` table of a sweep database, as a dict.

    Returns ``{(scenario, scheduler, metric): (n, mean)}`` — handy for
    tests and quick post-sweep queries without writing SQL.
    """
    conn = sqlite3.connect(path)
    try:
        cursor = conn.execute(
            "SELECT scenario, scheduler, metric, n, mean FROM aggregates"
        )
        return {
            (scenario, scheduler, metric): (n, mean)
            for scenario, scheduler, metric, n, mean in cursor
        }
    finally:
        conn.close()


def make_sink(kind: str, path: str) -> ResultSink:
    """Build a sink by CLI name."""
    if kind == "jsonl":
        return JsonlSink(path)
    if kind == "json":
        return JsonSink(path)
    if kind == "csv":
        return CsvSink(path)
    if kind == "sqlite":
        return SqliteSink(path)
    raise ConfigurationError(
        f"unknown sink {kind!r}; valid: {', '.join(SINK_KINDS)}"
    )
