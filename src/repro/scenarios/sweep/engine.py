"""The sweep engine core: expansion, identity, caching, row assembly.

A sweep names one or more registered scenarios, a parameter grid, and a
seed list; the engine expands the cross product into :class:`RunKey`\\ s,
hands the missing runs to an execution *backend* (see
:mod:`repro.scenarios.sweep.backends`), streams finished runs through
any configured *result sinks* (:mod:`repro.scenarios.sweep.sinks`), and
collects everything into one
:class:`~repro.reporting.ExperimentResult`.

Three properties the tests pin down:

* **Determinism** — every run derives its randomness from a
  :class:`~repro.sim.rng.RandomStreams` fork of ``(scenario, seed)``, so
  every backend — serial, process pool, or the distributed socket queue
  — produces byte-identical rows for the same :class:`SweepConfig`.
* **Order independence** — rows are assembled in run-key order, not in
  completion order; out-of-order backends are re-sequenced by
  :class:`OrderedRecorder`.
* **Resume** — with a ``cache_dir``, finished runs persist as one JSON
  file each, keyed by a hash of (scenario, params, seed, serving); a
  rerun loads them instead of recomputing.  The distributed backend
  reuses the same cache as its shared result store.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ... import obs
from ...core.fixed import FixedScheduler
from ...core.flexible import FlexibleScheduler
from ...errors import ConfigurationError
from ...network.routing import peek_cache
from ...orchestrator.campaign import campaign_runner_for, orchestrator_for
from ...orchestrator.database import TaskStatus
from ...reporting import ExperimentResult, Row
from ..registry import get_scenario
from ..spec import ScenarioInstance

#: Parameter grid: name -> candidate values.
Grid = Mapping[str, Sequence[Any]]

#: How a sweep may serve each run's workload.
SERVING_MODES = ("protocol", "campaign")


@dataclass(frozen=True)
class RunKey:
    """The identity of one sweep run: (scenario, params, seed[, serving]).

    ``params`` is stored as sorted items so keys are hashable, orderable,
    and canonically serialisable.  ``serving`` is only set when a sweep
    *overrides* the scenario's own serve mode — the default ``None``
    keeps tokens (and therefore resume caches) from pre-override sweeps
    valid.
    """

    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    seed: int
    serving: Optional[str] = None

    @classmethod
    def make(
        cls,
        scenario: str,
        params: Mapping[str, Any],
        seed: int,
        *,
        serving: Optional[str] = None,
    ) -> "RunKey":
        return cls(
            scenario=scenario,
            params=tuple(sorted(params.items())),
            seed=int(seed),
            serving=serving,
        )

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def canonical(self) -> str:
        """A stable JSON encoding of the key (cache/cache-file identity)."""
        payload: Dict[str, Any] = {
            "scenario": self.scenario,
            "params": self.params_dict(),
            "seed": self.seed,
        }
        if self.serving is not None:
            payload["serving"] = self.serving
        return json.dumps(payload, sort_keys=True, default=str)

    def token(self) -> str:
        """Filesystem-safe digest of :meth:`canonical`."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class SweepConfig:
    """What to sweep.

    Attributes:
        scenarios: registered scenario names (each validated up front).
        grid: parameter name -> values; the cross product is taken.  Every
            name must be a parameter of every swept scenario.
        seeds: replication seeds; each grid point runs once per seed.
        serving: how every run serves its workload — ``"protocol"`` admits
            tasks one at a time (the Fig. 3 protocol), ``"campaign"``
            plays the full arrival timeline on the simulation engine so
            bursts, contention, and fault timelines matter.  ``None``
            (the default) lets each scenario's own ``serve`` mode decide,
            exactly as before the option existed.
    """

    scenarios: Tuple[str, ...]
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Tuple[int, ...] = (0,)
    serving: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("a sweep needs at least one scenario")
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ConfigurationError(
                f"duplicate scenario names in sweep: {self.scenarios}"
            )
        if not self.seeds:
            raise ConfigurationError("a sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            # Duplicates would alias to one RunKey (one cache entry, one
            # sink write) while the result re-emitted rows per
            # occurrence — fresh and resumed sweeps would disagree.
            raise ConfigurationError(
                f"duplicate seeds in sweep: {self.seeds}"
            )
        if self.serving is not None and self.serving not in SERVING_MODES:
            raise ConfigurationError(
                f"serving must be one of {SERVING_MODES} or None, "
                f"got {self.serving!r}"
            )
        for name, values in self.grid.items():
            if not values:
                raise ConfigurationError(
                    "every grid dimension needs at least one value"
                )
            unique = []
            for value in values:
                if any(value == seen for seen in unique):
                    raise ConfigurationError(
                        f"duplicate values in grid dimension {name!r}: "
                        f"{list(values)}"
                    )
                unique.append(value)


def expand_grid(grid: Grid) -> List[Dict[str, Any]]:
    """The cross product of a grid, in sorted-key lexicographic order.

    An empty grid yields one empty parameter dict (the scenario defaults).
    """
    names = sorted(grid)
    combos = itertools.product(*(grid[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _spec_serving(spec) -> str:
    """A spec's native serve mode in sweep vocabulary."""
    return "campaign" if spec.serve == "campaign" else "protocol"


def expand_runs(config: SweepConfig) -> List[RunKey]:
    """Every RunKey of a sweep, validated against each scenario's params.

    Keys carry the *merged* parameters (defaults overlaid with the grid
    point), not just the overrides: merging validates unknown keys and
    bad types up front, and it makes the resume-cache identity sensitive
    to a scenario's defaults — edit a default and cached rows for the
    old definition stop matching instead of being served silently.  A
    ``config.serving`` override lands on the key (and hence the cache
    identity) only when it actually changes the scenario's mode.
    """
    keys: List[RunKey] = []
    for name in config.scenarios:
        spec = get_scenario(name)
        native = _spec_serving(spec)
        effective = config.serving or native
        if effective == "protocol" and spec.fault_profile is not None:
            raise ConfigurationError(
                f"scenario {name!r} carries a time-driven fault profile "
                "and cannot be served serving='protocol'; use 'campaign'"
            )
        serving = None if effective == native else effective
        for params in expand_grid(config.grid):
            for seed in config.seeds:
                keys.append(
                    RunKey.make(
                        name, spec.merge_params(params), seed, serving=serving
                    )
                )
    return keys


# ---------------------------------------------------------------------------
# Executing one run
# ---------------------------------------------------------------------------

def _scalar(value: Any) -> Any:
    """Parameters as row columns: keep JSON scalars, stringify the rest."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _serve(instance: ScenarioInstance, scheduler) -> Row:
    """Serve the instance's workload one task at a time; aggregate metrics."""
    orchestrator = orchestrator_for(instance, scheduler)
    round_ms: List[float] = []
    bandwidth: List[float] = []
    blocked = 0
    for task in instance.workload:
        record = orchestrator.admit(task)
        if record.status is not TaskStatus.RUNNING:
            blocked += 1
            continue
        report = orchestrator.evaluate(task.task_id)
        round_ms.append(report.round_latency.total_ms)
        bandwidth.append(report.consumed_bandwidth_gbps)
        orchestrator.complete(task.task_id)
    served = len(round_ms)

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return {
        "scheduler": scheduler.name,
        "served": served,
        "blocked": blocked,
        "round_ms": mean(round_ms),
        "bandwidth_gbps": mean(bandwidth),
        "failed_links": len(instance.failed_links),
    }


def _serve_campaign(instance: ScenarioInstance, scheduler) -> Row:
    """Play the workload's full arrival timeline on the simulation engine.

    Used for campaign-served runs (the bursty families, and any sweep
    with ``serving="campaign"``): tasks arrive at their generated times
    and contend for capacity, so burst parameters actually shape the
    results — ``makespan_ms`` most of all.  When the instance carries a
    fault timeline it is played interleaved with the arrivals, and the
    run's availability metrics (downtime, interruptions, reschedules,
    time-to-recover) become row columns.
    """
    outcome = campaign_runner_for(instance, scheduler).run()
    row = {
        "scheduler": scheduler.name,
        "served": outcome.completed,
        "blocked": outcome.blocked,
        "round_ms": outcome.mean_round_ms,
        "makespan_ms": outcome.makespan_ms,
        "failed_links": len(instance.failed_links),
    }
    if outcome.deadline_tasks:
        # Conditional, like availability below: rows from workloads
        # without deadline classes keep their legacy shape.
        row["deadline_tasks"] = outcome.deadline_tasks
        row["deadline_misses"] = outcome.deadline_misses
    if outcome.availability is not None:
        row.update(outcome.availability)
    return row


def execute_run(key: RunKey) -> List[Row]:
    """Run one (scenario, params, seed) under both schedulers.

    Each scheduler gets a freshly instantiated scenario (identical seed,
    hence identical network/failures/workload), mirroring the fig. 3
    protocol.  The key's ``serving`` override, when present, decides the
    serve mode instead of the spec.  Top-level so pool workers can
    unpickle it by reference.
    """
    spec = get_scenario(key.scenario)
    mode = key.serving or _spec_serving(spec)
    serve = _serve_campaign if mode == "campaign" else _serve
    prefix = {"scenario": key.scenario, "seed": key.seed}
    if key.serving is not None:
        prefix["serving"] = key.serving
    prefix.update(
        (name, _scalar(value)) for name, value in sorted(key.params)
    )
    rows: List[Row] = []
    for scheduler in (FixedScheduler(), FlexibleScheduler()):
        with obs.span("run.build", scenario=key.scenario, seed=key.seed):
            instance = spec.instantiate(key.params_dict(), seed=key.seed)
        with obs.span(
            "run.schedule",
            scenario=key.scenario,
            scheduler=scheduler.name,
            serving=mode,
        ):
            rows.append({**prefix, **serve(instance, scheduler)})
        if obs.active() is not None:
            cache = peek_cache(instance.network)
            if cache is not None:
                for stat, moved in cache.stats.delta({}).items():
                    if moved:
                        obs.inc(
                            f"pathcache.{stat}",
                            moved,
                            scheduler=scheduler.name,
                        )
    return rows


# ---------------------------------------------------------------------------
# The per-run JSON cache (also the distributed backend's shared store)
# ---------------------------------------------------------------------------

def cache_path(cache_dir: str, key: RunKey) -> str:
    return os.path.join(cache_dir, f"run-{key.token()}.json")


def load_cached(cache_dir: str, key: RunKey) -> Optional[List[Row]]:
    path = cache_path(cache_dir, key)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("key") != key.canonical():
        return None
    rows = payload.get("rows")
    return rows if isinstance(rows, list) else None


def store_cached(cache_dir: str, key: RunKey, rows: List[Row]) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    payload = {"key": key.canonical(), "rows": rows}
    path = cache_path(cache_dir, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Ordered recording
# ---------------------------------------------------------------------------

class OrderedRecorder:
    """Re-sequences backend completions into run-key submission order.

    Backends may finish runs in any order (the socket queue certainly
    does) and may deliver from multiple threads; the recorder buffers
    out-of-order results and invokes the callback for the longest ready
    prefix, so cache files and sink writes always stream in the same
    deterministic order as a serial run.  Duplicate deliveries of a key
    (e.g. a re-queued distributed run finishing twice) are ignored.
    """

    def __init__(
        self,
        keys: Sequence[RunKey],
        callback: Callable[[RunKey, List[Row]], None],
    ) -> None:
        self._order: List[RunKey] = list(keys)
        self._expected = set(self._order)
        self._callback = callback
        self._buffered: Dict[RunKey, List[Row]] = {}
        self._flushed: set = set()
        self._next = 0
        self._lock = threading.Lock()

    def emit(self, key: RunKey, rows: List[Row]) -> None:
        with self._lock:
            if key not in self._expected:
                raise ConfigurationError(
                    f"backend reported a run the sweep never submitted: "
                    f"{key.canonical()}"
                )
            if key in self._flushed or key in self._buffered:
                return
            self._buffered[key] = rows
            while self._next < len(self._order):
                head = self._order[self._next]
                if head not in self._buffered:
                    break
                self._callback(head, self._buffered.pop(head))
                self._flushed.add(head)
                self._next += 1

    def check_complete(self) -> None:
        with self._lock:
            missing = len(self._order) - len(self._flushed)
        if missing:
            raise ConfigurationError(
                f"backend finished without reporting {missing} of "
                f"{len(self._order)} runs"
            )


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------

def run_sweep(
    config: SweepConfig,
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    name: str = "sweep",
    jsonl_path: Optional[str] = None,
    backend: Optional[Any] = None,
    sink: Optional[Any] = None,
    collect: Optional[Any] = None,
) -> ExperimentResult:
    """Execute a sweep and collect every run's rows, in run-key order.

    This is a thin facade over the three layers: the engine expands and
    caches, a :class:`~repro.scenarios.sweep.backends.SweepBackend`
    executes the missing runs, and every finished run streams through
    the configured :class:`~repro.scenarios.sweep.sinks.ResultSink`\\ s.

    Args:
        config: scenarios × grid × seeds (× serving) to expand.
        workers: parallelism hint — ``1`` runs serially in-process,
            more selects a process pool (or sizes an explicitly named
            backend).  Results are identical either way — only
            wall-clock differs.
        cache_dir: when given, finished runs are persisted there and
            reruns load them instead of recomputing (resume-on-rerun).
            The socket backend announces it to workers so the cache
            doubles as the sweep's shared result store.
        name: the returned :class:`ExperimentResult`'s name.
        jsonl_path: shorthand for attaching a
            :class:`~repro.scenarios.sweep.sinks.JsonlSink` at this
            path (kept for backward compatibility; composes with
            ``sink``).
        backend: a :class:`SweepBackend` instance, one of the names
            ``"serial"`` / ``"pool"`` / ``"socket"``, or ``None`` to
            derive serial-vs-pool from ``workers`` exactly as before
            backends existed.
        sink: a :class:`ResultSink` instance receiving every run's rows
            as the run completes (cache hits first), in run-key order.
        collect: distributed trace collection — a path for the merged
            campaign trace (a rotation-aware
            :class:`~repro.obs.collect.TraceCollector` is created and
            closed here) or a ready collector (borrowed: the caller
            closes it).  Every executed run then runs under a per-run
            capture registry and its spans/counters merge, skew-
            normalised, into one campaign trace — strictly out-of-band;
            rows/sinks are byte-identical with collection on or off.
    """
    from ...obs.collect import TraceCollector
    from .backends import resolve_backend
    from .sinks import JsonlSink, ResultSink

    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    collector: Optional[TraceCollector] = None
    owns_collector = False
    if collect is not None:
        if isinstance(collect, TraceCollector):
            collector = collect
        elif isinstance(collect, str):
            collector = TraceCollector(collect, sweep=name)
            owns_collector = True
        else:
            raise ConfigurationError(
                f"collect must be a trace path or a TraceCollector, "
                f"got {collect!r}"
            )
    keys = expand_runs(config)
    rows_by_key: Dict[RunKey, List[Row]] = {}
    if cache_dir is not None:
        for key in keys:
            cached = load_cached(cache_dir, key)
            if cached is not None:
                rows_by_key[key] = cached
    missing = [key for key in keys if key not in rows_by_key]
    obs.inc("sweep.runs_total", len(keys), sweep=name)
    obs.inc("sweep.resume_hits", len(keys) - len(missing), sweep=name)
    obs.inc("sweep.runs_executed", len(missing), sweep=name)

    sinks: List[ResultSink] = []
    if jsonl_path is not None:
        sinks.append(JsonlSink(jsonl_path))
    if sink is not None:
        sinks.append(sink)
    opened: List[ResultSink] = []
    try:
        for each in sinks:
            each.open()
            opened.append(each)
        for key in keys:
            if key in rows_by_key:
                for each in sinks:
                    each.write_run(key, rows_by_key[key])

        if missing:
            def record(key: RunKey, rows: List[Row]) -> None:
                drain0 = time.perf_counter()
                with obs.span("run.drain", scenario=key.scenario):
                    rows_by_key[key] = rows
                    if cache_dir is not None:
                        store_cached(cache_dir, key, rows)
                    for each in sinks:
                        each.write_run(key, rows)
                if collector is not None:
                    collector.on_drain(
                        key, (time.perf_counter() - drain0) * 1000.0
                    )

            recorder = OrderedRecorder(missing, record)
            resolved = resolve_backend(backend, workers=workers)
            with obs.span("sweep", sweep=name, runs=len(missing)):
                if collector is not None:
                    resolved.execute(
                        missing,
                        recorder.emit,
                        cache_dir=cache_dir,
                        collector=collector,
                    )
                else:
                    resolved.execute(
                        missing, recorder.emit, cache_dir=cache_dir
                    )
            recorder.check_complete()
    except BaseException:
        # A failed sweep must not leave sinks holding resources, but a
        # buffering sink also must not fabricate a complete-looking
        # artifact from partial data — abort() instead of close().
        for each in opened:
            try:
                each.abort()
            except Exception:
                pass
        if owns_collector:
            try:
                collector.close()
            except Exception:
                pass
        raise
    for each in opened:
        each.close()
    if collector is not None:
        collector.finish(
            runs_total=len(keys),
            runs_executed=len(missing),
            resume_hits=len(keys) - len(missing),
        )
        if owns_collector:
            collector.close()

    parameters: Dict[str, Any] = {
        "scenarios": list(config.scenarios),
        "grid": {k: list(v) for k, v in sorted(config.grid.items())},
        "seeds": list(config.seeds),
    }
    if config.serving is not None:
        parameters["serving"] = config.serving
    result = ExperimentResult(
        name=name,
        description=(
            "scenario sweep over "
            + ", ".join(config.scenarios)
        ),
        parameters=parameters,
    )
    for key in keys:
        for row in rows_by_key[key]:
            result.add(**row)
    return result
