"""Distributed sweep execution: a work-stealing coordinator over TCP.

:class:`SocketQueueBackend` turns ``run_sweep`` into a coordinator: it
listens on a TCP socket and any number of workers — in-process threads,
other processes on the same machine (``repro scenarios worker``), or
other hosts entirely — connect and *pull* one :class:`RunKey` at a
time, execute it, and stream the rows back.  Pull scheduling is what
makes the queue work-stealing: a fast worker simply comes back for more
while a slow one is still busy, so load balances itself without any
up-front partitioning.  A worker that disconnects mid-run has its key
re-queued for the survivors, and a duplicate result for a re-queued key
is ignored — determinism makes both copies identical anyway.

Wire protocol: one JSON object per line in each direction; scenario
specs and run keys ride along as base64-pickled payloads, so workers
must be trusted (run on localhost or inside your own cluster only).
When the coordinator has a ``cache_dir`` on a filesystem the workers
share, each worker persists its finished runs straight into the per-run
JSON cache — the cache doubles as the sweep's shared result store, so
results survive lost connections and the next resume skips everything
any worker ever finished.

Handshake and steady state::

    worker  -> {"type": "hello", "worker": "<name>"}
    coord   -> {"type": "welcome", "specs": <b64>, "cache_dir": ...}
    worker  -> {"type": "next"}
    coord   -> {"type": "run", "key": <b64>, "token": "..."}   (or "done")
    worker  -> {"type": "result", "token": "...", "rows": [...]}
    worker  -> {"type": "next"}                                (and so on)

Pickled payloads only ever flow *from* the coordinator *to* workers
(workers must trust the sweep they join); results come back as plain
JSON rows plus the run's token, matched against the run this
connection checked out — the coordinator never unpickles client data.
Both sides enable TCP keepalive so a peer that vanishes without a FIN
(power loss, network partition) is detected and its run re-queued
instead of hanging the sweep.

Distributed trace collection rides the same frames: with a
:class:`~repro.obs.collect.TraceCollector` attached, each ``run``
message additionally carries the plain-JSON trace context (``"ctx"``)
and each ``result`` message may carry the captured span/counter chunk
(``"trace"`` — plain JSON, validated field by field, **never**
unpickled).  The coordinator samples its own clock around the exchange
to estimate each worker's wall offset; a worker that predates
collection simply ignores ``ctx`` and returns no chunk.
"""

from __future__ import annotations

import base64
import collections
import json
import os
import pickle
import socket
import threading
import time
import warnings
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ... import obs
from ...errors import ConfigurationError
from ...obs.collect import TraceCollector, TraceContext, collect_run
from .backends import EmitFn, SweepBackend, install_shipped_specs, pickled_sweep_specs
from .engine import RunKey, execute_run, store_cached

logger = obs.get_logger("sweep.distributed")


def _send(writer, message: Dict[str, Any]) -> None:
    writer.write(json.dumps(message) + "\n")
    writer.flush()


def _recv(reader) -> Dict[str, Any]:
    line = reader.readline()
    if not line:
        raise ConnectionError("peer closed the connection")
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ConnectionError(f"malformed message: {line!r}")
    return message


def _encode_key(key: RunKey) -> str:
    return base64.b64encode(pickle.dumps(key)).decode("ascii")


def _decode_key(payload: str) -> RunKey:
    """Worker side only: unpickle a run key shipped by the coordinator."""
    key = pickle.loads(base64.b64decode(payload))
    if not isinstance(key, RunKey):
        raise ConnectionError(f"payload is not a RunKey: {key!r}")
    return key


def _enable_keepalive(conn: socket.socket) -> None:
    """Detect silently-dead peers without bounding how long a run takes.

    A worker mid-run sends nothing for the whole computation, so a plain
    read timeout would kill slow-but-healthy workers; OS-level keepalive
    probes the idle connection instead and surfaces a dead peer as a
    read error, which re-queues the checked-out run.
    """
    conn.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for option, value in (
        ("TCP_KEEPIDLE", 30),
        ("TCP_KEEPINTVL", 10),
        ("TCP_KEEPCNT", 3),
    ):
        if hasattr(socket, option):
            try:
                conn.setsockopt(
                    socket.IPPROTO_TCP, getattr(socket, option), value
                )
            except OSError:
                pass  # platform exposes but rejects the knob


class _Coordinator:
    """Shared queue + results bookkeeping, one instance per sweep."""

    def __init__(
        self,
        keys: Sequence[RunKey],
        emit: EmitFn,
        *,
        specs_b64: str,
        cache_dir: Optional[str],
        collector: Optional[TraceCollector] = None,
    ) -> None:
        self.specs_b64 = specs_b64
        self.cache_dir = cache_dir
        self.collector = collector
        self._pending: Deque[RunKey] = collections.deque(keys)
        self._remaining: Set[RunKey] = set(keys)
        self._emit = emit
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self.failure: Optional[BaseException] = None
        #: Worker-churn accounting, exposed on the backend after the
        #: sweep as ``SocketQueueBackend.worker_stats``.
        self.worker_stats: Dict[str, int] = {
            "connects": 0,
            "disconnects": 0,
            "requeues": 0,
            "results": 0,
        }
        self._checkout_at: Dict[RunKey, float] = {}

    def on_connect(self, worker: str) -> None:
        with self._lock:
            self.worker_stats["connects"] += 1
        obs.inc("coordinator.connects")
        logger.debug("worker %s connected", worker)

    def on_disconnect(self, worker: str) -> None:
        with self._lock:
            self.worker_stats["disconnects"] += 1
        obs.inc("coordinator.disconnects")
        logger.debug("worker %s disconnected", worker)

    @property
    def finished(self) -> bool:
        with self._lock:
            return not self._remaining or self.failure is not None

    def checkout(self) -> Optional[RunKey]:
        """Next key for a hungry worker; blocks while the queue is empty
        but other workers are still out executing (their keys may come
        back for stealing).  ``None`` means the sweep is over."""
        with self._changed:
            while True:
                if self.failure is not None or not self._remaining:
                    return None
                if self._pending:
                    key = self._pending.popleft()
                    self._checkout_at[key] = time.monotonic()
                    return key
                self._changed.wait(timeout=0.1)

    def complete(
        self,
        key: RunKey,
        rows: List[Dict[str, Any]],
        *,
        chunk: Optional[Dict[str, Any]] = None,
        request_s: Optional[float] = None,
        response_s: Optional[float] = None,
    ) -> None:
        with self._changed:
            if key not in self._remaining:
                return  # duplicate delivery of a re-queued run (chunk too)
            self._remaining.discard(key)
            self.worker_stats["results"] += 1
            checked_out = self._checkout_at.pop(key, None)
            try:
                self._pending.remove(key)
            except ValueError:
                pass
            try:
                self._emit(key, rows)
            except BaseException as exc:  # surface sink/recorder errors
                self.failure = exc
            self._changed.notify_all()
        if self.collector is not None and chunk is not None:
            # Merge only the accepted (first) delivery; skew-normalise
            # with the coordinator clock samples around this exchange.
            self.collector.add_chunk(
                chunk, request_s=request_s, response_s=response_s
            )
        if checked_out is not None:
            obs.observe(
                "coordinator.run_latency_ms",
                (time.monotonic() - checked_out) * 1000.0,
            )

    def requeue(self, key: RunKey, *, worker: str = "?") -> None:
        with self._changed:
            if key in self._remaining and key not in self._pending:
                self._pending.append(key)
                self.worker_stats["requeues"] += 1
                self._checkout_at.pop(key, None)
                self._changed.notify_all()
                requeued = True
            else:
                requeued = False
        if requeued:
            logger.warning(
                "worker %s disconnected mid-run; re-queued %s",
                worker,
                key.canonical(),
            )
            obs.event("coordinator.requeue", worker=worker)
            if self.collector is not None:
                self.collector.on_requeue(key, worker)

    def abort(self, exc: BaseException) -> None:
        with self._changed:
            if self.failure is None:
                self.failure = exc
            self._changed.notify_all()

    def wait(self, timeout: Optional[float]) -> bool:
        """Block until every run reported (True) or the deadline passed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._changed:
            while self._remaining and self.failure is None:
                if deadline is not None and time.monotonic() >= deadline:
                    return False
                self._changed.wait(timeout=0.2)
        return True


def _serve_client(conn: socket.socket, coordinator: _Coordinator) -> None:
    """One worker connection: handshake, then the next/run/result loop."""
    checked_out: Optional[RunKey] = None
    request_s: Optional[float] = None
    worker = "?"
    connected = False
    reader = conn.makefile("r", encoding="utf-8")
    writer = conn.makefile("w", encoding="utf-8")
    try:
        hello = _recv(reader)
        if hello.get("type") != "hello":
            return
        worker = str(hello.get("worker") or "?")
        connected = True
        coordinator.on_connect(worker)
        _send(
            writer,
            {
                "type": "welcome",
                "specs": coordinator.specs_b64,
                "cache_dir": coordinator.cache_dir,
            },
        )
        while True:
            message = _recv(reader)
            kind = message.get("type")
            if kind == "next":
                key = coordinator.checkout()
                if key is None:
                    _send(writer, {"type": "done"})
                    return
                checked_out = key
                dispatch = {
                    "type": "run",
                    "key": _encode_key(key),
                    "token": key.token(),
                }
                if coordinator.collector is not None:
                    dispatch["ctx"] = (
                        coordinator.collector.context_for(key).as_wire()
                    )
                request_s = time.time()
                _send(writer, dispatch)
            elif kind == "result":
                # Results are matched against the run this connection
                # checked out — never unpickled from the client.
                response_s = time.time()
                rows = message.get("rows")
                if (
                    checked_out is None
                    or message.get("token") != checked_out.token()
                    or not isinstance(rows, list)
                ):
                    raise ConnectionError(
                        "result does not match the checked-out run"
                    )
                chunk = message.get("trace")
                coordinator.complete(
                    checked_out,
                    rows,
                    chunk=chunk if isinstance(chunk, dict) else None,
                    request_s=request_s,
                    response_s=response_s,
                )
                checked_out = None
                request_s = None
            elif kind == "error":
                # The run itself failed on the worker: re-queueing would
                # just crash the next worker too, so fail the sweep.
                coordinator.abort(
                    ConfigurationError(
                        f"worker failed a sweep run: {message.get('error')}"
                    )
                )
                checked_out = None
                return
            else:
                return  # protocol violation: drop the client
    except (OSError, ConnectionError, ValueError, KeyError, pickle.PickleError):
        pass  # client is gone or spoke garbage; its run is re-queued below
    finally:
        if checked_out is not None:
            coordinator.requeue(checked_out, worker=worker)
        if connected:
            coordinator.on_disconnect(worker)
        try:
            conn.close()
        except OSError:
            pass


class SocketQueueBackend(SweepBackend):
    """Work-stealing sweep execution over TCP sockets.

    Args:
        host / port: coordinator bind address; port ``0`` picks an
            ephemeral port (read it from :attr:`address` or the
            ``announce`` callback once ``execute`` starts listening).
        local_workers: in-process worker threads the coordinator starts
            against itself — with ``local_workers >= 1`` a sweep is
            self-contained, with ``0`` it waits for external workers
            (``repro scenarios worker --connect HOST:PORT``) to join.
        timeout: overall deadline in seconds for the whole batch
            (``None`` waits forever, e.g. for workers started by hand).
        announce: called with ``(host, port)`` once listening — the CLI
            uses it to print the coordinator address before blocking.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        local_workers: int = 0,
        timeout: Optional[float] = None,
        announce: Optional[Callable[[Tuple[str, int]], None]] = None,
    ) -> None:
        if local_workers < 0:
            raise ConfigurationError(
                f"local_workers must be >= 0, got {local_workers}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        self.host = host
        self.port = port
        self.local_workers = local_workers
        self.timeout = timeout
        self.announce = announce
        #: (host, port) actually bound, set while ``execute`` runs.
        self.address: Optional[Tuple[str, int]] = None
        #: Worker-churn counters of the most recent ``execute``:
        #: connects / disconnects / requeues / results.
        self.worker_stats: Dict[str, int] = {}

    def execute(
        self,
        keys: Sequence[RunKey],
        emit: EmitFn,
        *,
        cache_dir: Optional[str] = None,
        collector: Optional[TraceCollector] = None,
    ) -> None:
        if not keys:
            return
        try:
            specs = pickled_sweep_specs(keys)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            warnings.warn(
                f"socket sweep cannot ship a swept scenario spec to "
                f"workers ({exc}); remote workers will only resolve "
                f"built-in scenarios",
                RuntimeWarning,
                stacklevel=2,
            )
            specs = pickle.dumps([])
        coordinator = _Coordinator(
            keys,
            emit,
            specs_b64=base64.b64encode(specs).decode("ascii"),
            cache_dir=os.path.abspath(cache_dir) if cache_dir else None,
            collector=collector,
        )
        server = socket.create_server((self.host, self.port))
        server.settimeout(0.2)
        self.address = server.getsockname()[:2]
        if self.announce is not None:
            self.announce(self.address)

        handlers: List[threading.Thread] = []

        def accept_loop() -> None:
            while not coordinator.finished:
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return  # server closed
                _enable_keepalive(conn)
                handler = threading.Thread(
                    target=_serve_client,
                    args=(conn, coordinator),
                    daemon=True,
                )
                handler.start()
                handlers.append(handler)

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()

        locals_: List[threading.Thread] = []
        host, port = self.address
        for index in range(self.local_workers):

            def local_loop(worker_index: int = index) -> None:
                try:
                    run_worker(
                        host, port, worker_name=f"local-{worker_index}"
                    )
                except Exception as exc:
                    coordinator.abort(exc)

            thread = threading.Thread(target=local_loop, daemon=True)
            thread.start()
            locals_.append(thread)

        try:
            finished = coordinator.wait(self.timeout)
            if not finished and coordinator.failure is None:
                # Unblock every handler parked in checkout() so workers
                # get a clean "done" instead of lingering forever.
                coordinator.abort(
                    ConfigurationError(
                        f"socket sweep timed out after {self.timeout}s "
                        f"with runs still outstanding; are any workers "
                        f"connected?"
                    )
                )
        finally:
            server.close()
            self.address = None
            self.worker_stats = coordinator.worker_stats
        for thread in locals_:
            thread.join(timeout=5.0)
        for handler in handlers:
            handler.join(timeout=1.0)
        if coordinator.failure is not None:
            raise coordinator.failure


def run_worker(
    host: str,
    port: int,
    *,
    worker_name: Optional[str] = None,
    connect_timeout: float = 10.0,
) -> int:
    """Join a socket-backend sweep as a pull worker; returns runs executed.

    Connects to the coordinator, installs any shipped scenario specs,
    then pulls keys, executes them with the exact same deterministic
    :func:`~repro.scenarios.sweep.engine.execute_run` a serial sweep
    uses, and streams the rows back until the coordinator says ``done``.
    When the coordinator announced a ``cache_dir`` and this worker can
    reach it (shared filesystem), every finished run is persisted there
    before the result is sent — so even a result lost to a dropped
    connection survives for the next resume.
    """
    conn = socket.create_connection((host, port), timeout=connect_timeout)
    conn.settimeout(None)
    _enable_keepalive(conn)
    executed = 0
    try:
        reader = conn.makefile("r", encoding="utf-8")
        writer = conn.makefile("w", encoding="utf-8")
        name = worker_name or f"{socket.gethostname()}:{os.getpid()}"
        _send(writer, {"type": "hello", "worker": name})
        welcome = _recv(reader)
        if welcome.get("type") != "welcome":
            raise ConnectionError(
                f"expected a welcome, got {welcome.get('type')!r}"
            )
        shipped = welcome.get("specs")
        if shipped:
            install_shipped_specs(base64.b64decode(shipped))
        cache_dir = welcome.get("cache_dir")
        while True:
            _send(writer, {"type": "next"})
            message = _recv(reader)
            kind = message.get("type")
            if kind == "done":
                return executed
            if kind != "run":
                raise ConnectionError(f"expected run/done, got {kind!r}")
            key = _decode_key(message["key"])
            token = message.get("token") or key.token()
            context: Optional[TraceContext] = None
            ctx_wire = message.get("ctx")
            if ctx_wire is not None:
                try:
                    context = TraceContext.from_wire(ctx_wire)
                except ConfigurationError:
                    context = None  # malformed context: run uncollected
            chunk: Optional[Dict[str, Any]] = None
            try:
                if context is not None:
                    rows, chunk = collect_run(
                        execute_run, (key,), context=context, worker=name
                    )
                else:
                    rows = execute_run(key)
            except Exception as exc:
                # Tell the coordinator before dying: a failing run would
                # otherwise be re-queued onto the next worker forever.
                _send(
                    writer,
                    {
                        "type": "error",
                        "token": token,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
                raise
            if cache_dir:
                try:
                    store_cached(cache_dir, key, rows)
                except OSError:
                    pass  # cache not shared/writable; coordinator persists
            result: Dict[str, Any] = {
                "type": "result",
                "token": token,
                "rows": rows,
            }
            if chunk is not None:
                result["trace"] = chunk
            _send(writer, result)
            executed += 1
    finally:
        try:
            conn.close()
        except OSError:
            pass
