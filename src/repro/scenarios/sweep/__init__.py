"""Parameter-grid expansion and the sweep engine, split into three layers.

* :mod:`~repro.scenarios.sweep.engine` — grid expansion, run identity
  (:class:`RunKey`), deterministic seeding, the per-run resume cache,
  ordered row assembly, and the :func:`run_sweep` facade.
* :mod:`~repro.scenarios.sweep.backends` — *where* runs execute: a
  :class:`SweepBackend` ABC with :class:`SerialBackend`,
  :class:`ProcessPoolBackend` (the historical ``workers=N`` pool), and
  the distributed :class:`SocketQueueBackend`
  (:mod:`~repro.scenarios.sweep.distributed`): a work-stealing
  coordinator over TCP whose workers — threads, processes, or other
  hosts — pull runs and stream rows back, with ``repro scenarios
  worker --connect HOST:PORT`` as the stock worker.
* :mod:`~repro.scenarios.sweep.sinks` — *where* rows land as runs
  complete: a :class:`ResultSink` ABC with streaming JSONL, whole-file
  JSON, and a queryable SQLite sink with incremental running-mean
  aggregation.

Every backend produces byte-identical rows for the same
:class:`SweepConfig`, and ``run_sweep(...)`` keeps its historical
signature — existing callers never see the layers unless they want to.
"""

from .backends import (
    ProcessPoolBackend,
    SerialBackend,
    SweepBackend,
    _init_worker,
    install_shipped_specs,
    resolve_backend,
)
from .distributed import SocketQueueBackend, run_worker
from .engine import (
    Grid,
    OrderedRecorder,
    Row,
    RunKey,
    SERVING_MODES,
    SweepConfig,
    cache_path,
    execute_run,
    expand_grid,
    expand_runs,
    load_cached,
    run_sweep,
    store_cached,
)
from .sinks import (
    SINK_KINDS,
    CsvSink,
    JsonSink,
    JsonlSink,
    ResultSink,
    SqliteSink,
    make_sink,
    read_aggregates,
)

__all__ = [
    "Grid",
    "CsvSink",
    "JsonSink",
    "JsonlSink",
    "OrderedRecorder",
    "ProcessPoolBackend",
    "ResultSink",
    "Row",
    "RunKey",
    "SERVING_MODES",
    "SINK_KINDS",
    "SerialBackend",
    "SocketQueueBackend",
    "SqliteSink",
    "SweepBackend",
    "SweepConfig",
    "cache_path",
    "execute_run",
    "expand_grid",
    "expand_runs",
    "install_shipped_specs",
    "load_cached",
    "make_sink",
    "read_aggregates",
    "resolve_backend",
    "run_sweep",
    "run_worker",
    "store_cached",
]
