"""The global scenario registry.

Scenarios are registered once at import time (the built-ins) or by user
code; lookups are by name.  The registry is process-global: fork-started
sweep workers inherit it wholesale, and spawn-started workers rebuild the
built-in catalogue on import and receive any swept user-registered specs
pickled from the parent (see ``sweep._init_worker``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` under its name.

    Raises:
        ConfigurationError: on a duplicate name unless ``replace=True``.
    """
    if not replace and spec.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered; "
            "pass replace=True to overwrite"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a scenario; unknown names are ignored."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario.

    Raises:
        ConfigurationError: for unknown names (with the known list).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: "
            f"{sorted(_REGISTRY) or '(none)'}"
        ) from None


def list_scenarios(
    tag: Optional[str] = None, *, tags: Sequence[str] = ()
) -> List[ScenarioSpec]:
    """Registered specs in name order, optionally filtered by tags.

    ``tag`` (the original single filter) and ``tags`` combine: a spec
    must carry *every* requested tag.  Topology-family membership is a
    tag too (``family:waxman``), auto-added by registry-backed specs.
    """
    wanted = ([tag] if tag is not None else []) + list(tags)
    specs = (spec for _, spec in sorted(_REGISTRY.items()))
    if not wanted:
        return list(specs)
    return [spec for spec in specs if all(t in spec.tags for t in wanted)]
