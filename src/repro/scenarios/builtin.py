"""The built-in scenario catalogue.

Fifteen scenarios spanning every topology family (metro ring/mesh,
spine-leaf, NSFNET WAN, scale-free, fat-tree) crossed with the three
workload families (uniform, heavy-tailed Pareto demands, bursty
arrivals), static link failures, and time-driven fault injection (the
``resilience``-tagged campaigns).  Importing :mod:`repro.scenarios`
registers all of them; sweeps reference them by name.
"""

from __future__ import annotations

from typing import Any, Dict

from ..network import topologies
from ..network.graph import Network
from ..resilience.profile import FaultProfile
from ..sim.rng import RandomStreams
from ..tasks.aitask import AITask
from ..tasks.models import get_model
from ..tasks.workload import TaskWorkload, WorkloadConfig
from . import workloads
from .failures import LinkFailureModel
from .registry import register
from .spec import ScenarioSpec

#: Workload parameters shared by every built-in scenario.
_WORKLOAD_DEFAULTS: Dict[str, Any] = {
    "n_tasks": 20,
    "n_locals": 4,
    "demand_gbps": 10.0,
    "rounds": 3,
    "background_flows": 20,
}

#: Fault-process numbers for the failure-aware campaigns.  Each dict
#: seeds BOTH the spec's FaultProfile and its parameter defaults, so
#: the profile and the sweepable knobs can never drift apart
#: (``FaultProfile.resolved`` overrides profile fields from params).
_FLAKY_LINK_FAULTS: Dict[str, float] = {
    "link_mtbf_ms": 60_000.0,
    "link_mttr_ms": 8_000.0,
    "horizon_ms": 120_000.0,
}
_NODE_OUTAGE_FAULTS: Dict[str, float] = {
    "node_mtbf_ms": 150_000.0,
    "node_mttr_ms": 8_000.0,
    "horizon_ms": 120_000.0,
}
_MAINTENANCE_FAULTS: Dict[str, float] = {
    "link_mtbf_ms": 8_000.0,
    "link_mttr_ms": 2_000.0,
    "node_mtbf_ms": 13_000.0,
    "node_mttr_ms": 2_000.0,
    "horizon_ms": 20_000.0,
}


# ---------------------------------------------------------------------------
# Topology builders (module-level so specs stay picklable)
# ---------------------------------------------------------------------------

def _toy_triangle(params: Dict[str, Any]) -> Network:
    return topologies.toy_triangle()


def _metro_mesh(params: Dict[str, Any]) -> Network:
    return topologies.metro_mesh(
        n_sites=params["n_sites"], servers_per_site=params["servers_per_site"]
    )


def _metro_ring(params: Dict[str, Any]) -> Network:
    return topologies.metro_ring(
        n_sites=params["n_sites"], servers_per_site=params["servers_per_site"]
    )


def _spine_leaf(params: Dict[str, Any]) -> Network:
    return topologies.spine_leaf(
        n_spines=params["n_spines"],
        n_leaves=params["n_leaves"],
        servers_per_leaf=params["servers_per_leaf"],
    )


def _nsfnet(params: Dict[str, Any]) -> Network:
    return topologies.nsfnet(servers_per_site=params["servers_per_site"])


def _scale_free(params: Dict[str, Any]) -> Network:
    return topologies.scale_free(
        n_routers=params["n_routers"],
        m_links=params["m_links"],
        seed=params["topology_seed"],
        servers_per_site=params["servers_per_site"],
    )


def _fat_tree(params: Dict[str, Any]) -> Network:
    return topologies.fat_tree(k=params["fat_tree_k"])


def _fig1_workload(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """The exact Fig. 1 task: global S-G, locals S-1..S-3."""
    task = AITask(
        task_id="fig1-task",
        model=get_model(params["model"]),
        global_node="S-G",
        local_nodes=("S-1", "S-2", "S-3"),
        rounds=params["rounds"],
        demand_gbps=params["demand_gbps"],
    )
    config = WorkloadConfig(
        n_tasks=1, n_locals=3, demand_gbps=params["demand_gbps"],
        rounds=params["rounds"],
    )
    return TaskWorkload(tasks=(task,), config=config)


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------

def register_builtin_scenarios() -> None:
    """Register the catalogue (idempotent: replaces on re-import)."""
    specs = (
        ScenarioSpec(
            name="toy-triangle",
            description="the Fig. 1 toy example: one 3-local task, no load",
            topology=_toy_triangle,
            workload=_fig1_workload,
            defaults={
                "demand_gbps": 10.0,
                "model": "resnet18",
                "rounds": 1,
                "background_flows": 0,
            },
            tags=("toy", "uniform", "figure"),
        ),
        ScenarioSpec(
            name="metro-mesh-uniform",
            description="the paper's metro mesh under the stock uniform mix",
            topology=_metro_mesh,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, "n_sites": 16, "servers_per_site": 2},
            tags=("metro", "uniform", "figure"),
        ),
        ScenarioSpec(
            name="metro-mesh-pareto",
            description="metro mesh with heavy-tailed (Pareto) task demands",
            topology=_metro_mesh,
            workload=workloads.pareto,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_sites": 16,
                "servers_per_site": 2,
                "pareto_alpha": 1.8,
                "demand_cap_gbps": 80.0,
            },
            tags=("metro", "pareto"),
        ),
        ScenarioSpec(
            name="metro-mesh-failures",
            description="metro mesh degraded by two random span failures",
            topology=_metro_mesh,
            workload=workloads.uniform,
            failures=LinkFailureModel(n_failures=2),
            defaults={**_WORKLOAD_DEFAULTS, "n_sites": 16, "servers_per_site": 2},
            tags=("metro", "uniform", "failures"),
        ),
        ScenarioSpec(
            name="metro-ring-uniform",
            description="the plain metro ring (no chords) under uniform load",
            topology=_metro_ring,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, "n_sites": 8, "servers_per_site": 2},
            tags=("metro", "uniform"),
        ),
        ScenarioSpec(
            name="spine-leaf-uniform",
            description="the all-optical spine-leaf fabric, uniform mix",
            topology=_spine_leaf,
            workload=workloads.uniform,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_spines": 4,
                "n_leaves": 8,
                "servers_per_leaf": 2,
            },
            tags=("datacenter", "uniform"),
        ),
        ScenarioSpec(
            name="nsfnet-wan",
            description="14-node NSFNET WAN where propagation dominates",
            topology=_nsfnet,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, "servers_per_site": 2},
            tags=("wan", "uniform"),
        ),
        ScenarioSpec(
            name="nsfnet-bursty",
            description="NSFNET under Poisson-cluster (bursty) arrivals",
            topology=_nsfnet,
            workload=workloads.bursty,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "servers_per_site": 2,
                "burst_size": 5,
                "mean_burst_gap_ms": 1_000.0,
                "intra_burst_ms": 5.0,
            },
            serve="campaign",
            tags=("wan", "bursty"),
        ),
        ScenarioSpec(
            name="scale-free-hubs",
            description="Barabási–Albert graph whose hubs bottleneck traffic",
            topology=_scale_free,
            workload=workloads.uniform,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_routers": 24,
                "m_links": 2,
                "topology_seed": 1,
                "servers_per_site": 1,
            },
            tags=("scale-free", "uniform"),
        ),
        ScenarioSpec(
            name="scale-free-pareto",
            description="scale-free hubs stressed by heavy-tailed demands",
            topology=_scale_free,
            workload=workloads.pareto,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_routers": 24,
                "m_links": 2,
                "topology_seed": 1,
                "servers_per_site": 1,
                "pareto_alpha": 1.6,
                "demand_cap_gbps": 80.0,
            },
            tags=("scale-free", "pareto"),
        ),
        ScenarioSpec(
            name="fat-tree-uniform",
            description="k=4 fat-tree datacenter fabric, uniform mix",
            topology=_fat_tree,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, "fat_tree_k": 4},
            tags=("datacenter", "uniform"),
        ),
        ScenarioSpec(
            name="fat-tree-bursty",
            description="fat-tree under bursty arrivals (incast-like pressure)",
            topology=_fat_tree,
            workload=workloads.bursty,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "fat_tree_k": 4,
                "burst_size": 4,
                "mean_burst_gap_ms": 500.0,
                "intra_burst_ms": 2.0,
            },
            serve="campaign",
            tags=("datacenter", "bursty"),
        ),
        # --- failure-aware campaigns (time-driven fault injection) ----
        ScenarioSpec(
            name="metro-mesh-flaky-links",
            description="metro mesh campaign with stochastic span fail/repair",
            topology=_metro_mesh,
            workload=workloads.uniform,
            fault_profile=FaultProfile(**_FLAKY_LINK_FAULTS),
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_sites": 16,
                "servers_per_site": 2,
                "rounds": 8,
                "mean_interarrival_ms": 400.0,
                **_FLAKY_LINK_FAULTS,
            },
            serve="campaign",
            tags=("metro", "uniform", "failures", "resilience"),
        ),
        ScenarioSpec(
            name="nsfnet-node-outages",
            description="NSFNET campaign with node (server+router) outages",
            topology=_nsfnet,
            workload=workloads.uniform,
            fault_profile=FaultProfile(
                **_NODE_OUTAGE_FAULTS, node_kinds=("server", "router")
            ),
            defaults={
                **_WORKLOAD_DEFAULTS,
                "servers_per_site": 2,
                "rounds": 8,
                "mean_interarrival_ms": 400.0,
                **_NODE_OUTAGE_FAULTS,
            },
            serve="campaign",
            tags=("wan", "uniform", "failures", "resilience"),
        ),
        ScenarioSpec(
            name="metro-roadm-maintenance",
            description="metro mesh under deterministic ROADM+span maintenance",
            topology=_metro_mesh,
            workload=workloads.uniform,
            fault_profile=FaultProfile(
                **_MAINTENANCE_FAULTS,
                law="deterministic",
                node_kinds=("roadm",),
            ),
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_sites": 16,
                "servers_per_site": 2,
                "rounds": 8,
                "mean_interarrival_ms": 700.0,
                **_MAINTENANCE_FAULTS,
            },
            serve="campaign",
            tags=("metro", "uniform", "failures", "resilience", "optical"),
        ),
    )
    for spec in specs:
        register(spec, replace=True)
