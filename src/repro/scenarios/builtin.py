"""The built-in scenario catalogue.

Twenty-one scenarios spanning every registered topology family — metro
ring/mesh, spine-leaf, NSFNET, scale-free, fat-tree, Waxman WANs,
oversubscribed Clos, Rocketfuel ISP maps, and the multi-region
composite — crossed with the three workload families (uniform,
heavy-tailed Pareto demands, bursty arrivals), static link failures, and
time-driven fault injection (the ``resilience``-tagged campaigns).

Every topology reference is registry-backed: specs carry a
:class:`~repro.scenarios.spec.FamilyTopology` naming a family from
:mod:`repro.network.topology`, its structural knobs ride on the
scenario parameter dict (so ``scenarios sweep --set oversubscription=…``
grids over fabric shape like any workload knob), and each spec
auto-advertises a ``family:<name>`` tag for discovery.  Importing
:mod:`repro.scenarios` registers all of them; sweeps reference them by
name.
"""

from __future__ import annotations

from typing import Any, Dict

from ..network.graph import Network
from ..resilience.profile import FaultProfile
from ..sim.rng import RandomStreams
from ..tasks.aitask import AITask
from ..tasks.models import get_model
from ..tasks.workload import TaskWorkload, WorkloadConfig
from . import workloads
from .failures import LinkFailureModel
from .registry import register
from .spec import FamilyTopology, ScenarioSpec

#: Workload parameters shared by every built-in scenario.
_WORKLOAD_DEFAULTS: Dict[str, Any] = {
    "n_tasks": 20,
    "n_locals": 4,
    "demand_gbps": 10.0,
    "rounds": 3,
    "background_flows": 20,
}

#: Fault-process numbers for the failure-aware campaigns.  Each dict
#: seeds BOTH the spec's FaultProfile and its parameter defaults, so
#: the profile and the sweepable knobs can never drift apart
#: (``FaultProfile.resolved`` overrides profile fields from params).
_FLAKY_LINK_FAULTS: Dict[str, float] = {
    "link_mtbf_ms": 60_000.0,
    "link_mttr_ms": 8_000.0,
    "horizon_ms": 120_000.0,
}
_NODE_OUTAGE_FAULTS: Dict[str, float] = {
    "node_mtbf_ms": 150_000.0,
    "node_mttr_ms": 8_000.0,
    "horizon_ms": 120_000.0,
}
_MAINTENANCE_FAULTS: Dict[str, float] = {
    "link_mtbf_ms": 8_000.0,
    "link_mttr_ms": 2_000.0,
    "node_mtbf_ms": 13_000.0,
    "node_mttr_ms": 2_000.0,
    "horizon_ms": 20_000.0,
}
#: Fault numbers for the composite flaky campaign.  The MTBF applies
#: uniformly to every inter-switch span (metro, backbone, and gateway
#: alike — FaultProfile has no per-region targeting yet; see ROADMAP),
#: sized so several spans flap within the horizon on the default fabric.
_WAN_FLAKY_FAULTS: Dict[str, float] = {
    "link_mtbf_ms": 45_000.0,
    "link_mttr_ms": 6_000.0,
    "horizon_ms": 90_000.0,
}
#: Correlated-failure numbers (PR 9).  SRLG cuts share one MTBF per
#: conduit group; degraded spans drop to a capacity fraction instead of
#: zero; the pinned trace campaign adds failure forecasts the
#: orchestrator drains ahead of.
_SRLG_CUT_FAULTS: Dict[str, float] = {
    "srlg_mtbf_ms": 40_000.0,
    "srlg_mttr_ms": 6_000.0,
    "srlg_radius_km": 150.0,
    "horizon_ms": 90_000.0,
}
_DEGRADED_SPAN_FAULTS: Dict[str, float] = {
    "degrade_mtbf_ms": 30_000.0,
    "degrade_mttr_ms": 5_000.0,
    "degraded_fraction": 0.25,
    "horizon_ms": 90_000.0,
}
_TRACE_SRLG_FAULTS: Dict[str, float] = {
    "srlg_mtbf_ms": 9_000.0,
    "srlg_mttr_ms": 2_000.0,
    "srlg_radius_km": 150.0,
    "forecast_lead_ms": 400.0,
    "horizon_ms": 16_000.0,
}
#: Trace-synthesis knobs shared by the trace-replay scenarios.
_TRACE_DEFAULTS: Dict[str, Any] = {
    "trace_path": "",
    "trace_epochs": 24,
    "trace_epoch_ms": 1_000.0,
    "trace_mean_arrivals": 2.0,
    "trace_pareto_alpha": 1.8,
    "trace_diurnal_amplitude": 0.6,
    "demand_cap_gbps": 80.0,
    "modulation": "none",
}


# ---------------------------------------------------------------------------
# Registry-backed topology references (module-level, picklable)
# ---------------------------------------------------------------------------

_TOY_TRIANGLE = FamilyTopology("toy-triangle")
_METRO_RING = FamilyTopology("metro-ring")
_METRO_MESH = FamilyTopology("metro-mesh")
_NSFNET = FamilyTopology("nsfnet")
_SPINE_LEAF = FamilyTopology("spine-leaf")
_SCALE_FREE = FamilyTopology("scale-free", rename=(("topology_seed", "seed"),))
_FAT_TREE = FamilyTopology("fat-tree", rename=(("fat_tree_k", "k"),))
_WAXMAN = FamilyTopology(
    "waxman",
    rename=(
        ("topology_seed", "seed"),
        ("waxman_alpha", "alpha"),
        ("waxman_beta", "beta"),
    ),
)
_CLOS = FamilyTopology("clos")
_ISP_TELSTRA = FamilyTopology("isp-as1221-telstra")
_ISP_EBONE = FamilyTopology("isp-as1755-ebone")
_MULTI_METRO_WAN = FamilyTopology(
    "multi-metro-wan", rename=(("topology_seed", "seed"),)
)


def _fig1_workload(
    network: Network, params: Dict[str, Any], streams: RandomStreams
) -> TaskWorkload:
    """The exact Fig. 1 task: global S-G, locals S-1..S-3."""
    task = AITask(
        task_id="fig1-task",
        model=get_model(params["model"]),
        global_node="S-G",
        local_nodes=("S-1", "S-2", "S-3"),
        rounds=params["rounds"],
        demand_gbps=params["demand_gbps"],
    )
    config = WorkloadConfig(
        n_tasks=1, n_locals=3, demand_gbps=params["demand_gbps"],
        rounds=params["rounds"],
    )
    return TaskWorkload(tasks=(task,), config=config)


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------

def register_builtin_scenarios() -> None:
    """Register the catalogue (idempotent: replaces on re-import)."""
    specs = (
        ScenarioSpec(
            name="toy-triangle",
            description="the Fig. 1 toy example: one 3-local task, no load",
            topology=_TOY_TRIANGLE,
            workload=_fig1_workload,
            defaults={
                "demand_gbps": 10.0,
                "model": "resnet18",
                "rounds": 1,
                "background_flows": 0,
            },
            tags=("toy", "uniform", "figure"),
        ),
        ScenarioSpec(
            name="metro-mesh-uniform",
            description="the paper's metro mesh under the stock uniform mix",
            topology=_METRO_MESH,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, "n_sites": 16, "servers_per_site": 2},
            tags=("metro", "uniform", "figure"),
        ),
        ScenarioSpec(
            name="metro-mesh-pareto",
            description="metro mesh with heavy-tailed (Pareto) task demands",
            topology=_METRO_MESH,
            workload=workloads.pareto,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_sites": 16,
                "servers_per_site": 2,
                "pareto_alpha": 1.8,
                "demand_cap_gbps": 80.0,
            },
            tags=("metro", "pareto"),
        ),
        ScenarioSpec(
            name="metro-mesh-failures",
            description="metro mesh degraded by two random span failures",
            topology=_METRO_MESH,
            workload=workloads.uniform,
            failures=LinkFailureModel(n_failures=2),
            defaults={**_WORKLOAD_DEFAULTS, "n_sites": 16, "servers_per_site": 2},
            tags=("metro", "uniform", "failures"),
        ),
        ScenarioSpec(
            name="metro-ring-uniform",
            description="the plain metro ring (no chords) under uniform load",
            topology=_METRO_RING,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, "n_sites": 8, "servers_per_site": 2},
            tags=("metro", "uniform"),
        ),
        ScenarioSpec(
            name="spine-leaf-uniform",
            description="the all-optical spine-leaf fabric, uniform mix",
            topology=_SPINE_LEAF,
            workload=workloads.uniform,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_spines": 4,
                "n_leaves": 8,
                "servers_per_leaf": 2,
            },
            tags=("datacenter", "uniform"),
        ),
        ScenarioSpec(
            name="nsfnet-wan",
            description="14-node NSFNET WAN where propagation dominates",
            topology=_NSFNET,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, "servers_per_site": 2},
            tags=("wan", "uniform"),
        ),
        ScenarioSpec(
            name="nsfnet-bursty",
            description="NSFNET under Poisson-cluster (bursty) arrivals",
            topology=_NSFNET,
            workload=workloads.bursty,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "servers_per_site": 2,
                "burst_size": 5,
                "mean_burst_gap_ms": 1_000.0,
                "intra_burst_ms": 5.0,
            },
            serve="campaign",
            tags=("wan", "bursty"),
        ),
        ScenarioSpec(
            name="scale-free-hubs",
            description="Barabási–Albert graph whose hubs bottleneck traffic",
            topology=_SCALE_FREE,
            workload=workloads.uniform,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_routers": 24,
                "m_links": 2,
                "topology_seed": 1,
                "servers_per_site": 1,
            },
            tags=("scale-free", "uniform"),
        ),
        ScenarioSpec(
            name="scale-free-pareto",
            description="scale-free hubs stressed by heavy-tailed demands",
            topology=_SCALE_FREE,
            workload=workloads.pareto,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_routers": 24,
                "m_links": 2,
                "topology_seed": 1,
                "servers_per_site": 1,
                "pareto_alpha": 1.6,
                "demand_cap_gbps": 80.0,
            },
            tags=("scale-free", "pareto"),
        ),
        ScenarioSpec(
            name="fat-tree-uniform",
            description="k=4 fat-tree datacenter fabric, uniform mix",
            topology=_FAT_TREE,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, "fat_tree_k": 4},
            tags=("datacenter", "uniform"),
        ),
        ScenarioSpec(
            name="fat-tree-bursty",
            description="fat-tree under bursty arrivals (incast-like pressure)",
            topology=_FAT_TREE,
            workload=workloads.bursty,
            defaults={
                **_WORKLOAD_DEFAULTS,
                "fat_tree_k": 4,
                "burst_size": 4,
                "mean_burst_gap_ms": 500.0,
                "intra_burst_ms": 2.0,
            },
            serve="campaign",
            tags=("datacenter", "bursty"),
        ),
        # --- new topology families (PR 5) -----------------------------
        # Each new-family spec seeds its defaults from the family's own
        # schema (family_defaults applies the rename map in reverse), so
        # *every* fabric knob is sweepable — then overrides the sizes
        # that keep default sweeps fast.
        ScenarioSpec(
            name="waxman-wan",
            description="Waxman random WAN; alpha/beta/seed sweep the fabric",
            topology=_WAXMAN,
            workload=workloads.uniform,
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_WAXMAN.family_defaults(),
                "n_routers": 16,
                "topology_seed": 1,
            },
            tags=("wan", "uniform"),
        ),
        ScenarioSpec(
            name="clos-oversub",
            description="folded Clos; oversubscription grids from 1:1 upward",
            topology=_CLOS,
            workload=workloads.uniform,
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_CLOS.family_defaults(),
                "oversubscription": 4.0,
            },
            tags=("datacenter", "uniform", "oversubscription"),
        ),
        ScenarioSpec(
            name="isp-telstra",
            description="Telstra AS1221 backbone with degree-inferred capacities",
            topology=_ISP_TELSTRA,
            workload=workloads.uniform,
            defaults={**_WORKLOAD_DEFAULTS, **_ISP_TELSTRA.family_defaults()},
            tags=("wan", "isp", "uniform"),
        ),
        ScenarioSpec(
            name="isp-ebone-pareto",
            description="Ebone AS1755 backbone under heavy-tailed demands",
            topology=_ISP_EBONE,
            workload=workloads.pareto,
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_ISP_EBONE.family_defaults(),
                "pareto_alpha": 1.8,
                "demand_cap_gbps": 80.0,
            },
            tags=("wan", "isp", "pareto"),
        ),
        ScenarioSpec(
            name="multi-metro-wan",
            description="three metro meshes over a Waxman backbone (composite)",
            topology=_MULTI_METRO_WAN,
            workload=workloads.uniform,
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_MULTI_METRO_WAN.family_defaults(),
                "sites_per_region": 4,
                "backbone_routers": 8,
                "topology_seed": 1,
            },
            tags=("composite", "wan", "metro", "uniform"),
        ),
        # --- failure-aware campaigns (time-driven fault injection) ----
        ScenarioSpec(
            name="metro-mesh-flaky-links",
            description="metro mesh campaign with stochastic span fail/repair",
            topology=_METRO_MESH,
            workload=workloads.uniform,
            fault_profile=FaultProfile(**_FLAKY_LINK_FAULTS),
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_sites": 16,
                "servers_per_site": 2,
                "rounds": 8,
                "mean_interarrival_ms": 400.0,
                **_FLAKY_LINK_FAULTS,
            },
            serve="campaign",
            tags=("metro", "uniform", "failures", "resilience"),
        ),
        ScenarioSpec(
            name="nsfnet-node-outages",
            description="NSFNET campaign with node (server+router) outages",
            topology=_NSFNET,
            workload=workloads.uniform,
            fault_profile=FaultProfile(
                **_NODE_OUTAGE_FAULTS, node_kinds=("server", "router")
            ),
            defaults={
                **_WORKLOAD_DEFAULTS,
                "servers_per_site": 2,
                "rounds": 8,
                "mean_interarrival_ms": 400.0,
                **_NODE_OUTAGE_FAULTS,
            },
            serve="campaign",
            tags=("wan", "uniform", "failures", "resilience"),
        ),
        ScenarioSpec(
            name="metro-roadm-maintenance",
            description="metro mesh under deterministic ROADM+span maintenance",
            topology=_METRO_MESH,
            workload=workloads.uniform,
            fault_profile=FaultProfile(
                **_MAINTENANCE_FAULTS,
                law="deterministic",
                node_kinds=("roadm",),
            ),
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_sites": 16,
                "servers_per_site": 2,
                "rounds": 8,
                "mean_interarrival_ms": 700.0,
                **_MAINTENANCE_FAULTS,
            },
            serve="campaign",
            tags=("metro", "uniform", "failures", "resilience", "optical"),
        ),
        ScenarioSpec(
            name="multi-metro-wan-flaky",
            description="composite campaign with span fail/repair across regions",
            topology=_MULTI_METRO_WAN,
            workload=workloads.uniform,
            fault_profile=FaultProfile(**_WAN_FLAKY_FAULTS),
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_MULTI_METRO_WAN.family_defaults(),
                "sites_per_region": 4,
                "backbone_routers": 8,
                "topology_seed": 1,
                "rounds": 6,
                "mean_interarrival_ms": 500.0,
                **_WAN_FLAKY_FAULTS,
            },
            serve="campaign",
            tags=(
                "composite",
                "wan",
                "metro",
                "uniform",
                "failures",
                "resilience",
            ),
        ),
        # --- trace-shaped workloads + correlated failures (PR 9) ------
        ScenarioSpec(
            name="mawi-trace-replay",
            description="metro mesh replaying a synthesised MAWI-like trace",
            topology=_METRO_MESH,
            workload=workloads.trace,
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_TRACE_DEFAULTS,
                "n_sites": 16,
                "servers_per_site": 2,
                "diurnal_period_ms": 12_000.0,
                "diurnal_amplitude": 0.6,
                "flash_time_ms": 6_000.0,
                "flash_width_ms": 1_500.0,
                "flash_fraction": 0.4,
            },
            serve="campaign",
            tags=("metro", "trace", "workload"),
        ),
        ScenarioSpec(
            name="interdc-deadlines",
            description="Telstra backbone serving deadline-bearing transfer classes",
            topology=_ISP_TELSTRA,
            workload=workloads.interdc,
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_ISP_TELSTRA.family_defaults(),
                "mean_interarrival_ms": 400.0,
                "bulk_fraction": 0.3,
                "bulk_demand_gbps": 25.0,
                "bulk_deadline_ms": 30_000.0,
                "interactive_demand_gbps": 5.0,
                "interactive_deadline_ms": 6_000.0,
                "modulation": "none",
            },
            serve="campaign",
            tags=("wan", "isp", "deadlines", "workload"),
        ),
        ScenarioSpec(
            name="isp-srlg-cuts",
            description="Ebone campaign with geographic shared-risk conduit cuts",
            topology=_ISP_EBONE,
            workload=workloads.uniform,
            fault_profile=FaultProfile(**_SRLG_CUT_FAULTS),
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_ISP_EBONE.family_defaults(),
                "rounds": 8,
                "mean_interarrival_ms": 400.0,
                **_SRLG_CUT_FAULTS,
            },
            serve="campaign",
            tags=("wan", "isp", "failures", "resilience", "srlg"),
        ),
        ScenarioSpec(
            name="metro-degraded-spans",
            description="metro mesh campaign with partial span degradation",
            topology=_METRO_MESH,
            workload=workloads.uniform,
            fault_profile=FaultProfile(**_DEGRADED_SPAN_FAULTS),
            defaults={
                **_WORKLOAD_DEFAULTS,
                "n_sites": 16,
                "servers_per_site": 2,
                "rounds": 8,
                "mean_interarrival_ms": 400.0,
                **_DEGRADED_SPAN_FAULTS,
            },
            serve="campaign",
            tags=("metro", "uniform", "failures", "resilience", "degrade"),
        ),
        ScenarioSpec(
            name="trace-srlg-campaign",
            description="pinned trace replay under forecast SRLG cuts (acceptance)",
            topology=_ISP_EBONE,
            workload=workloads.trace,
            fault_profile=FaultProfile(**_TRACE_SRLG_FAULTS),
            defaults={
                **_WORKLOAD_DEFAULTS,
                **_ISP_EBONE.family_defaults(),
                **_TRACE_DEFAULTS,
                # Small on purpose: this scenario is replayed across the
                # backend × path-cache × CSR byte-identity matrix.
                "n_locals": 3,
                "rounds": 2,
                "trace_epochs": 12,
                "trace_epoch_ms": 800.0,
                "trace_mean_arrivals": 1.5,
                **_TRACE_SRLG_FAULTS,
            },
            serve="campaign",
            tags=("wan", "isp", "trace", "failures", "resilience", "srlg"),
        ),
    )
    for spec in specs:
        register(spec, replace=True)
