"""Scenario registry + parallel sweep engine.

This package is the chassis for scaling the reproduction beyond the
paper's two figures: named, parameterized scenarios (topology × workload
× optional failures) live in a process-global registry, and the sweep
engine expands parameter grids over them, fanning runs out across a
worker pool with per-run deterministic seeding and resume-on-rerun
caching.

Quick tour::

    from repro.scenarios import get_scenario, list_scenarios
    from repro.scenarios import SweepConfig, run_sweep

    for spec in list_scenarios():
        print(spec.name, "-", spec.description)

    result = run_sweep(
        SweepConfig(
            scenarios=("metro-mesh-uniform",),
            grid={"n_locals": [3, 6, 9]},
            seeds=(0, 1),
        ),
        workers=4,
    )
    print(result.to_table())

Importing the package registers the built-in catalogue.
"""

from ..resilience.profile import FaultProfile
from .builtin import register_builtin_scenarios
from .failures import LinkFailureModel
from .registry import get_scenario, list_scenarios, register, unregister
from .spec import FamilyTopology, ScenarioInstance, ScenarioSpec
from .sweep import (
    CsvSink,
    JsonSink,
    JsonlSink,
    ProcessPoolBackend,
    ResultSink,
    RunKey,
    SerialBackend,
    SocketQueueBackend,
    SqliteSink,
    SweepBackend,
    SweepConfig,
    execute_run,
    expand_grid,
    expand_runs,
    make_sink,
    read_aggregates,
    run_sweep,
    run_worker,
)
from .workloads import WORKLOADS

register_builtin_scenarios()

__all__ = [
    "CsvSink",
    "FamilyTopology",
    "FaultProfile",
    "JsonSink",
    "JsonlSink",
    "LinkFailureModel",
    "ProcessPoolBackend",
    "ResultSink",
    "RunKey",
    "ScenarioInstance",
    "ScenarioSpec",
    "SerialBackend",
    "SocketQueueBackend",
    "SqliteSink",
    "SweepBackend",
    "SweepConfig",
    "WORKLOADS",
    "execute_run",
    "expand_grid",
    "expand_runs",
    "get_scenario",
    "list_scenarios",
    "make_sink",
    "read_aggregates",
    "register",
    "register_builtin_scenarios",
    "run_sweep",
    "run_worker",
    "unregister",
]
