"""Extension experiments: stronger baselines, failures, compression.

These go beyond the poster's own evaluation, covering its stated future
work ("comparison with stronger baselines will come as future works") and
two operational questions a deployment immediately hits: what happens on
link failure, and what fp16 weight compression buys.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.baselines import ChainScheduler, KspLoadBalancedScheduler
from ..core.evaluation import ScheduleEvaluator
from ..core.fixed import FixedScheduler
from ..core.flexible import FlexibleScheduler
from ..network.topologies import metro_mesh
from ..orchestrator.database import TaskStatus
from ..orchestrator.orchestrator import Orchestrator
from ..sim.rng import RandomStreams
from ..tasks.aitask import AITask
from ..tasks.workload import WorkloadConfig, generate_workload
from ..traffic.generator import TrafficGenerator
from .results import ExperimentResult


def run_baselines_comparison(
    *,
    n_locals_values: Sequence[int] = (3, 9, 15),
    n_tasks: int = 20,
    seed: int = 23,
) -> ExperimentResult:
    """All four schedulers on the fig3 protocol.

    Expected shape: chain is bandwidth-minimal but latency-worst at large
    ``k``; ksp-lb beats fixed under contention but still pays per-local
    bandwidth; flexible balances both.
    """
    result = ExperimentResult(
        name="abl-baselines",
        description="fixed vs ksp-lb vs chain vs flexible across locals",
        parameters={"n_tasks": n_tasks, "seed": seed},
    )
    schedulers = (
        FixedScheduler(),
        KspLoadBalancedScheduler(k=3),
        ChainScheduler(),
        FlexibleScheduler(),
    )
    for n_locals in n_locals_values:
        for scheduler in schedulers:
            network = metro_mesh(n_sites=16, servers_per_site=2)
            streams = RandomStreams(seed)
            TrafficGenerator(network, streams).inject_static(40)
            workload = generate_workload(
                network,
                WorkloadConfig(n_tasks=n_tasks, n_locals=n_locals),
                streams,
            )
            orchestrator = Orchestrator(network, scheduler)
            round_ms: List[float] = []
            bandwidth: List[float] = []
            blocked = 0
            for task in workload:
                record = orchestrator.admit(task)
                if record.status is not TaskStatus.RUNNING:
                    blocked += 1
                    continue
                report = orchestrator.evaluate(task.task_id)
                round_ms.append(report.round_latency.total_ms)
                bandwidth.append(report.consumed_bandwidth_gbps)
                orchestrator.complete(task.task_id)
            served = len(round_ms)
            result.add(
                scheduler=scheduler.name,
                n_locals=n_locals,
                served=served,
                blocked=blocked,
                round_ms=round(sum(round_ms) / served, 4),
                bandwidth_gbps=round(sum(bandwidth) / served, 4),
            )
    return result


def run_failure_recovery(
    *,
    n_tasks: int = 10,
    n_failures: int = 4,
    seed: int = 29,
) -> ExperimentResult:
    """Fail ring links one by one and measure repair per scheduler.

    Expected shape: both schedulers re-route most tasks on a mesh with
    spare paths; the flexible scheduler's repaired schedules consume less
    bandwidth, so post-failure headroom is larger.
    """
    result = ExperimentResult(
        name="abl-failures",
        description="link-failure repair: re-routed tasks and residual load",
        parameters={"n_tasks": n_tasks, "n_failures": n_failures, "seed": seed},
    )
    for scheduler in (FixedScheduler(), FlexibleScheduler()):
        network = metro_mesh(n_sites=12, servers_per_site=2)
        streams = RandomStreams(seed)
        workload = generate_workload(
            network,
            WorkloadConfig(n_tasks=n_tasks, n_locals=5, demand_gbps=5.0),
            streams,
        )
        orchestrator = Orchestrator(
            network, scheduler, container_gflops=5_000.0
        )
        for task in workload:
            orchestrator.admit(task)
        running_before = len(orchestrator.database.running())

        repaired = 0
        affected_total = 0
        for i in range(n_failures):
            outcomes = orchestrator.handle_link_failure(
                f"RT-{2 * i}", f"RT-{2 * i + 1}"
            )
            affected_total += len(outcomes)
            repaired += sum(1 for ok in outcomes.values() if ok)
        running_after = len(orchestrator.database.running())
        result.add(
            scheduler=scheduler.name,
            running_before=running_before,
            affected=affected_total,
            repaired=repaired,
            running_after=running_after,
            bandwidth_after_gbps=round(
                sum(
                    record.schedule.consumed_bandwidth_gbps
                    for record in orchestrator.database.running()
                    if record.schedule is not None
                ),
                4,
            ),
        )
    return result


def run_optical_spectrum(
    *,
    n_locals_values: Sequence[int] = (3, 9, 15),
    n_tasks: int = 10,
    seed: int = 37,
) -> ExperimentResult:
    """Spectrum cost: lit wavelength-hops per scheduler (OFC companion
    paper's metric).

    Every inter-site edge of every concurrent schedule is groomed onto
    the ROADM ring through the optical underlay.  Channels are 25 Gbps so
    the schedulers' rate difference translates into lit spectrum.
    Expected shape: the flexible scheduler's smaller trees light fewer
    wavelength-hops, and the gap grows with the number of local models.
    """
    from ..optical.underlay import metro_underlay

    result = ExperimentResult(
        name="abl-optical",
        description="lit wavelength-hops under the optical underlay",
        parameters={"n_tasks": n_tasks, "seed": seed},
    )
    for n_locals in n_locals_values:
        for scheduler in (FixedScheduler(), FlexibleScheduler()):
            network = metro_mesh(n_sites=16, servers_per_site=2)
            underlay = metro_underlay(
                network, n_wavelengths=160, channel_gbps=25.0
            )
            streams = RandomStreams(seed)
            workload = generate_workload(
                network,
                WorkloadConfig(n_tasks=n_tasks, n_locals=n_locals, demand_gbps=5.0),
                streams,
            )
            orchestrator = Orchestrator(
                network, scheduler, container_gflops=5_000.0
            )
            mirrored = 0
            for task in workload:
                record = orchestrator.admit(task)
                if record.status is not TaskStatus.RUNNING:
                    continue
                underlay.mirror_schedule(record.schedule)
                mirrored += 1
            result.add(
                scheduler=scheduler.name,
                n_locals=n_locals,
                tasks_mirrored=mirrored,
                lightpaths=underlay.lit_lightpaths,
                wavelength_hops=underlay.lit_wavelength_hops,
            )
    return result


def run_campaign_comparison(
    *,
    n_tasks: int = 12,
    rounds: int = 8,
    seed: int = 47,
) -> ExperimentResult:
    """Concurrent campaign: makespan and mean round per scheduler.

    Unlike fig3's one-task-at-a-time protocol, here the whole mix runs
    *concurrently* on simulated time with Poisson arrivals, so tasks
    contend with each other for the duration of their training.  Expected
    shape: the flexible scheduler's smaller footprint leaves more room
    for everyone — fewer blocked tasks and a shorter campaign.
    """
    from ..orchestrator.campaign import CampaignRunner

    result = ExperimentResult(
        name="abl-campaign",
        description="concurrent campaign: makespan, rounds, blocking",
        parameters={"n_tasks": n_tasks, "rounds": rounds, "seed": seed},
    )
    for scheduler in (FixedScheduler(), FlexibleScheduler()):
        network = metro_mesh(n_sites=16, servers_per_site=2)
        streams = RandomStreams(seed)
        TrafficGenerator(network, streams).inject_static(30)
        workload = generate_workload(
            network,
            WorkloadConfig(
                n_tasks=n_tasks,
                n_locals=8,
                rounds=rounds,
                demand_gbps=8.0,
                mean_interarrival_ms=30.0,
            ),
            streams,
        )
        orchestrator = Orchestrator(
            network, scheduler, container_gflops=5_000.0
        )
        campaign = CampaignRunner(orchestrator, workload).run()
        result.add(
            scheduler=scheduler.name,
            completed=campaign.completed,
            blocked=campaign.blocked,
            makespan_ms=round(campaign.makespan_ms, 4),
            mean_round_ms=round(campaign.mean_round_ms, 4),
        )
    return result


def run_optimality_gap(
    *,
    n_locals_values: Sequence[int] = (3, 4, 5, 6),
    n_samples: int = 15,
    seed: int = 43,
) -> ExperimentResult:
    """Optimality gap of the MST heuristic vs the exact Steiner tree.

    For random terminal sets, compare the flexible scheduler's terminal
    tree weight against the Dreyfus–Wagner optimum under the same
    latency weight.  Expected shape: mean gap far below the worst-case
    2(1 − 1/k) bound — evidence that the poster's MST construction is
    near-optimal on realistic metro fabrics, not just "a heuristic".
    """
    from ..network.paths import latency_weight, terminal_tree
    from ..network.steiner import steiner_tree_cost

    result = ExperimentResult(
        name="abl-optgap",
        description="terminal-MST weight vs exact Steiner optimum",
        parameters={"n_samples": n_samples, "seed": seed},
    )
    network = metro_mesh(n_sites=12, servers_per_site=2)
    weight = latency_weight(network)
    rng = RandomStreams(seed).stream("optgap")
    for n_locals in n_locals_values:
        gaps: List[float] = []
        for _ in range(n_samples):
            terminals = rng.sample(network.servers(), n_locals + 1)
            optimum = steiner_tree_cost(network, terminals, weight)
            tree = terminal_tree(network, terminals[0], terminals[1:], weight)
            gaps.append(tree.weight / optimum if optimum > 0 else 1.0)
        k = n_locals + 1
        result.add(
            n_locals=n_locals,
            samples=n_samples,
            mean_ratio=round(sum(gaps) / len(gaps), 4),
            worst_ratio=round(max(gaps), 4),
            guarantee=round(2.0 * (1.0 - 1.0 / k), 4),
        )
    return result


def run_model_validation(
    *,
    n_locals_values: Sequence[int] = (3, 9, 15),
    seed: int = 41,
) -> ExperimentResult:
    """Cross-check: analytic evaluator vs event-driven executor.

    For each sweep point, one task is scheduled per scheduler and its
    round is both *evaluated* (closed form) and *executed* (dependency
    graph of simulator events).  Expected shape: agreement within a few
    percent everywhere — evidence that the figures rest on two
    independent implementations of the same semantics, not on one
    formula trusted twice.
    """
    from ..core.simulation import RoundExecutor
    from ..sim.engine import Simulator

    result = ExperimentResult(
        name="abl-simcheck",
        description="analytic vs event-driven round latency",
        parameters={"seed": seed},
    )
    for n_locals in n_locals_values:
        for scheduler in (FixedScheduler(), FlexibleScheduler()):
            network = metro_mesh(n_sites=16, servers_per_site=2)
            streams = RandomStreams(seed)
            TrafficGenerator(network, streams).inject_static(40)
            workload = generate_workload(
                network, WorkloadConfig(n_tasks=1, n_locals=n_locals), streams
            )
            task = workload.tasks[0]
            schedule = scheduler.schedule(task, network)
            analytic = ScheduleEvaluator(network).round_latency(schedule).total_ms
            executed = (
                RoundExecutor(network, schedule)
                .execute_round(Simulator())
                .total_ms
            )
            result.add(
                scheduler=scheduler.name,
                n_locals=n_locals,
                analytic_ms=round(analytic, 4),
                executed_ms=round(executed, 4),
                gap_percent=round(100.0 * (executed - analytic) / analytic, 3),
            )
    return result


def run_compression_ablation(
    *,
    n_tasks: int = 20,
    n_locals: int = 9,
    seed: int = 31,
) -> ExperimentResult:
    """fp32 vs fp16 weight exchange (generative-AI model-growth pressure).

    The poster motivates flexible scheduling with rapidly growing model
    sizes; halving the wire format is the other lever.  Expected shape:
    fp16 halves bandwidth-time (transfer components) for both schedulers
    without changing who wins.
    """
    result = ExperimentResult(
        name="abl-fp16",
        description="fp32 vs fp16 weight exchange under both schedulers",
        parameters={"n_tasks": n_tasks, "n_locals": n_locals, "seed": seed},
    )
    for precision in ("fp32", "fp16"):
        for scheduler in (FixedScheduler(), FlexibleScheduler()):
            network = metro_mesh(n_sites=16, servers_per_site=2)
            streams = RandomStreams(seed)
            TrafficGenerator(network, streams).inject_static(40)
            workload = generate_workload(
                network,
                WorkloadConfig(n_tasks=n_tasks, n_locals=n_locals),
                streams,
            )
            evaluator_net = network
            orchestrator = Orchestrator(network, scheduler)
            round_ms: List[float] = []
            comm_ms: List[float] = []
            for task in workload:
                if precision == "fp16":
                    task = AITask(
                        task_id=task.task_id,
                        model=task.model.half_precision(),
                        global_node=task.global_node,
                        local_nodes=task.local_nodes,
                        rounds=task.rounds,
                        demand_gbps=task.demand_gbps,
                        arrival_ms=task.arrival_ms,
                    )
                record = orchestrator.admit(task)
                if record.status is not TaskStatus.RUNNING:
                    continue
                report = orchestrator.evaluate(task.task_id)
                round_ms.append(report.round_latency.total_ms)
                comm_ms.append(
                    report.round_latency.broadcast_ms
                    + report.round_latency.upload_ms
                )
                orchestrator.complete(task.task_id)
            served = len(round_ms)
            result.add(
                precision=precision,
                scheduler=scheduler.name,
                served=served,
                round_ms=round(sum(round_ms) / served, 4),
                comm_ms=round(sum(comm_ms) / served, 4),
            )
    return result
