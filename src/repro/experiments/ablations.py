"""Ablation experiments for the paper's open challenges and design knobs.

Every ablation follows the same recipe as the figure harnesses: build a
fabric, load it, serve a reproducible workload, report rows.  See
DESIGN.md §4 for the experiment ids.
"""

from __future__ import annotations

from typing import Sequence

from ..core.evaluation import EvaluationConfig, ScheduleEvaluator
from ..core.flexible import FlexibleScheduler
from ..core.rescheduling import ReschedulingPolicy
from ..errors import ConfigurationError
from ..network.auxiliary import AuxiliaryWeights
from ..network.graph import Network
from ..network.topologies import metro_mesh, spine_leaf
from ..orchestrator.database import TaskStatus
from ..orchestrator.orchestrator import Orchestrator
from ..sim.rng import RandomStreams
from ..tasks import selection as selection_strategies
from ..tasks.workload import WorkloadConfig, generate_workload
from ..traffic.generator import TrafficGenerator
from ..transport.channel import Channel
from ..transport.protocols import RdmaTransport, TcpTransport
from .results import ExperimentResult


# ----------------------------------------------------------------------
# abl-resched: interruption vs saving trade-off (challenge #1)
# ----------------------------------------------------------------------
def run_rescheduling_ablation(
    interruption_values_ms: Sequence[float] = (0.5, 2.0, 8.0, 32.0, 128.0),
    *,
    n_tasks: int = 12,
    seed: int = 11,
) -> ExperimentResult:
    """Sweep the modelled interruption cost and observe re-scheduling.

    Scenario: tasks are admitted under heavy background traffic (forcing
    detours), then the background load departs.  A cheap interruption lets
    the policy chase the newly freed capacity; an expensive one freezes
    the (now suboptimal) schedules.
    """
    result = ExperimentResult(
        name="abl-resched",
        description="re-scheduling count and savings vs interruption cost",
        parameters={"n_tasks": n_tasks, "seed": seed},
    )
    for interruption_ms in interruption_values_ms:
        network = metro_mesh(n_sites=12, servers_per_site=2)
        streams = RandomStreams(seed)
        traffic = TrafficGenerator(network, streams, rate_gbps=15.0)
        traffic.inject_static(30)

        workload = generate_workload(
            network,
            WorkloadConfig(
                n_tasks=n_tasks, n_locals=6, demand_gbps=5.0, rounds=50
            ),
            streams,
        )
        policy = ReschedulingPolicy(interruption_ms=interruption_ms)
        orchestrator = Orchestrator(
            network,
            FlexibleScheduler(),
            rescheduling=policy,
            container_gflops=5_000.0,  # keep placement off the critical path
        )
        before_bandwidth = 0.0
        for task in workload:
            record = orchestrator.admit(task)
            if record.status is TaskStatus.RUNNING:
                before_bandwidth += record.schedule.consumed_bandwidth_gbps

        traffic.clear()  # the network conditions change
        outcomes = orchestrator.reschedule_pass()

        after_bandwidth = sum(
            record.schedule.consumed_bandwidth_gbps
            for record in orchestrator.database.running()
            if record.schedule is not None
        )
        rescheduled = sum(1 for done in outcomes.values() if done)
        result.add(
            interruption_ms=interruption_ms,
            running_tasks=len(outcomes),
            rescheduled=rescheduled,
            bandwidth_before_gbps=round(before_bandwidth, 4),
            bandwidth_after_gbps=round(after_bandwidth, 4),
            bandwidth_saved_gbps=round(before_bandwidth - after_bandwidth, 4),
        )
    return result


# ----------------------------------------------------------------------
# abl-select: client selection strategies (challenge #1)
# ----------------------------------------------------------------------
def run_selection_ablation(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    *,
    n_tasks: int = 20,
    n_locals: int = 12,
    seed: int = 13,
) -> ExperimentResult:
    """Compare selection strategies at several keep-fractions.

    Reported per (strategy, fraction): retained utility fraction, mean
    bandwidth, and mean round latency of the flexible schedules.
    """
    result = ExperimentResult(
        name="abl-select",
        description="client selection: utility retained vs resources saved",
        parameters={"n_tasks": n_tasks, "n_locals": n_locals, "seed": seed},
    )
    strategies = {
        "top-utility": selection_strategies.select_top_utility,
        "random": selection_strategies.select_random,
        "utility-proportional": selection_strategies.utility_proportional,
    }
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction {fraction} not in (0, 1]")
        for strategy_name, strategy in strategies.items():
            network = metro_mesh(n_sites=16, servers_per_site=2)
            streams = RandomStreams(seed)
            workload = generate_workload(
                network,
                WorkloadConfig(
                    n_tasks=n_tasks,
                    n_locals=n_locals,
                    demand_gbps=5.0,
                    with_utility=True,
                ),
                streams,
            )
            scheduler = FlexibleScheduler()
            evaluator = ScheduleEvaluator(network, EvaluationConfig())
            bandwidth = []
            round_ms = []
            utility_kept = []
            for task in workload:
                full_utility = selection_strategies.selected_utility(task)
                if fraction >= 1.0:
                    chosen = task
                else:
                    chosen = strategy(task, fraction)
                utility_kept.append(
                    selection_strategies.selected_utility(chosen) / full_utility
                )
                schedule = scheduler.schedule(chosen, network)
                report = evaluator.report(schedule)
                bandwidth.append(report.consumed_bandwidth_gbps)
                round_ms.append(report.round_latency.total_ms)
                scheduler.release(schedule, network)
            count = len(workload.tasks)
            result.add(
                strategy=strategy_name,
                fraction=fraction,
                utility_kept=round(sum(utility_kept) / count, 4),
                bandwidth_gbps=round(sum(bandwidth) / count, 4),
                round_ms=round(sum(round_ms) / count, 4),
            )
    return result


# ----------------------------------------------------------------------
# abl-rdma: TCP vs RDMA across distances (challenge #2)
# ----------------------------------------------------------------------
def run_transport_ablation(
    distances_km: Sequence[float] = (1.0, 10.0, 100.0, 500.0, 2000.0),
    *,
    model_size_mb: float = 400.0,
    rate_gbps: float = 50.0,
    long_haul_loss: float = 1e-5,
) -> ExperimentResult:
    """Transfer one model over increasing distances under both protocols.

    RDMA wins comfortably at datacenter scale (no CPU, tiny headers);
    its go-back-N recovery erodes the advantage as the bandwidth-delay
    product grows — the challenge-#2 long-distance degradation.
    """
    result = ExperimentResult(
        name="abl-rdma",
        description="TCP vs RDMA transfer time and CPU vs distance",
        parameters={
            "model_size_mb": model_size_mb,
            "rate_gbps": rate_gbps,
            "long_haul_loss": long_haul_loss,
        },
    )
    tcp = TcpTransport(loss_rate=long_haul_loss)
    rdma = RdmaTransport(loss_rate=long_haul_loss)
    for distance in distances_km:
        network = Network("pair")
        network.add_node("A")
        network.add_node("B")
        network.add_link("A", "B", 400.0, distance_km=distance)
        for transport in (tcp, rdma):
            channel = Channel(network, ("A", "B"), rate_gbps, transport)
            estimate = channel.estimate(model_size_mb)
            result.add(
                distance_km=distance,
                protocol=transport.name,
                transfer_ms=round(estimate.total_ms, 4),
                effective_gbps=round(estimate.effective_rate_gbps, 4),
                endpoint_cpu_ms=round(estimate.endpoint_cpu_ms, 4),
            )
    return result


# ----------------------------------------------------------------------
# abl-spineleaf: all-optical spine-leaf vs metro mesh (challenge #3)
# ----------------------------------------------------------------------
def run_spineleaf_ablation(
    *,
    n_tasks: int = 20,
    n_locals: int = 6,
    seed: int = 17,
) -> ExperimentResult:
    """Serve the same task mix on a metro mesh and a spine-leaf fabric."""
    result = ExperimentResult(
        name="abl-spineleaf",
        description="metro mesh vs all-optical spine-leaf, flexible scheduler",
        parameters={"n_tasks": n_tasks, "n_locals": n_locals, "seed": seed},
    )
    fabrics = {
        "metro-mesh": lambda: metro_mesh(n_sites=12, servers_per_site=2),
        "spine-leaf": lambda: spine_leaf(n_spines=4, n_leaves=12, servers_per_leaf=2),
    }
    for fabric_name, factory in fabrics.items():
        network = factory()
        streams = RandomStreams(seed)
        workload = generate_workload(
            network,
            WorkloadConfig(n_tasks=n_tasks, n_locals=n_locals, demand_gbps=10.0),
            streams,
        )
        orchestrator = Orchestrator(network, FlexibleScheduler())
        round_ms = []
        broadcast_ms = []
        bandwidth = []
        blocked = 0
        for task in workload:
            record = orchestrator.admit(task)
            if record.status is not TaskStatus.RUNNING:
                blocked += 1
                continue
            report = orchestrator.evaluate(task.task_id)
            round_ms.append(report.round_latency.total_ms)
            broadcast_ms.append(report.round_latency.broadcast_ms)
            bandwidth.append(report.consumed_bandwidth_gbps)
            orchestrator.complete(task.task_id)
        served = len(round_ms)
        result.add(
            fabric=fabric_name,
            served=served,
            blocked=blocked,
            round_ms=round(sum(round_ms) / served, 4),
            broadcast_ms=round(sum(broadcast_ms) / served, 4),
            bandwidth_gbps=round(sum(bandwidth) / served, 4),
        )
    return result


# ----------------------------------------------------------------------
# abl-aux: auxiliary-graph weight sweep (design ablation)
# ----------------------------------------------------------------------
def run_auxgraph_ablation(
    alpha_values: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 8.0),
    *,
    beta_latency: float = 1.0,
    n_tasks: int = 20,
    n_locals: int = 8,
    seed: int = 19,
) -> ExperimentResult:
    """Sweep the bandwidth coefficient of the auxiliary-graph weight.

    alpha = 0 routes purely by latency; large alpha trades round latency
    for smaller trees — the curve exposes the knob DESIGN.md calls out.
    """
    result = ExperimentResult(
        name="abl-aux",
        description="auxiliary-graph weighting: bandwidth vs latency trade",
        parameters={
            "beta_latency": beta_latency,
            "n_tasks": n_tasks,
            "n_locals": n_locals,
            "seed": seed,
        },
    )
    for alpha in alpha_values:
        weights = AuxiliaryWeights(
            alpha_bandwidth=alpha, beta_latency=beta_latency
        )
        network = metro_mesh(n_sites=16, servers_per_site=2)
        streams = RandomStreams(seed)
        traffic = TrafficGenerator(network, streams)
        traffic.inject_static(30)
        workload = generate_workload(
            network,
            WorkloadConfig(n_tasks=n_tasks, n_locals=n_locals, demand_gbps=10.0),
            streams,
        )
        scheduler = FlexibleScheduler(weights=weights)
        evaluator = ScheduleEvaluator(network, EvaluationConfig())
        bandwidth = []
        round_ms = []
        for task in workload:
            schedule = scheduler.schedule(task, network)
            report = evaluator.report(schedule)
            bandwidth.append(report.consumed_bandwidth_gbps)
            round_ms.append(report.round_latency.total_ms)
            scheduler.release(schedule, network)
        count = len(workload.tasks)
        result.add(
            alpha_bandwidth=alpha,
            bandwidth_gbps=round(sum(bandwidth) / count, 4),
            round_ms=round(sum(round_ms) / count, 4),
        )
    return result
