"""Figure 1: the qualitative fixed-vs-flexible connectivity example.

One task (global model G, three locals) on the toy triangle topology.
The rows expose exactly what the paper's figure shows: which links each
scheduler occupies, how much bandwidth that consumes, and where
aggregation happens.
"""

from __future__ import annotations


from ..core.evaluation import EvaluationConfig, ScheduleEvaluator
from ..core.fixed import FixedScheduler
from ..core.flexible import FlexibleScheduler
from ..network.topologies import toy_triangle
from ..tasks.aitask import AITask
from ..tasks.models import get_model
from .results import ExperimentResult


def run_fig1(demand_gbps: float = 10.0, model_name: str = "resnet18") -> ExperimentResult:
    """Schedule the Fig. 1 example under both schedulers and compare."""
    result = ExperimentResult(
        name="fig1",
        description="fixed vs flexible connectivity for one 3-local task",
        parameters={"demand_gbps": demand_gbps, "model": model_name},
    )
    for scheduler in (FixedScheduler(), FlexibleScheduler()):
        network = toy_triangle()
        task = AITask(
            task_id="fig1-task",
            model=get_model(model_name),
            global_node="S-G",
            local_nodes=("S-1", "S-2", "S-3"),
            demand_gbps=demand_gbps,
        )
        schedule = scheduler.schedule(task, network)
        evaluator = ScheduleEvaluator(network, EvaluationConfig())
        report = evaluator.report(schedule)
        edges = sorted(schedule.occupied_edges())
        result.add(
            scheduler=scheduler.name,
            occupied_edges=len(edges),
            edge_list=";".join(f"{a}->{b}" for a, b in edges),
            bandwidth_gbps=report.consumed_bandwidth_gbps,
            round_ms=report.round_latency.total_ms,
            aggregation_nodes=",".join(report.aggregation_nodes),
        )
    return result
