"""The paper's figures re-expressed as scenario-registry sweeps.

Historically :mod:`fig1`/:mod:`fig3` hand-built their topology × workload
combinations and ran them serially.  These harnesses produce the same
*kind* of series through the generic sweep engine instead, so they pick
up grid expansion, pluggable execution backends (serial / process pool /
distributed socket queue), resume caching, and streaming result sinks
for free — and serve as the template for expressing any future figure.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from ..scenarios.sweep import SqliteSink, SweepConfig, run_sweep
from .results import ExperimentResult


def run_fig1_sweep(
    demand_values: Sequence[float] = (5.0, 10.0, 20.0),
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    backend: Optional[Any] = None,
) -> ExperimentResult:
    """Fig. 1's toy example swept over the task's demand.

    Each row reports both schedulers' consumed bandwidth on the toy
    triangle; the paper's single data point is the ``demand_gbps=10``
    slice.  ``backend`` picks where runs execute (``"serial"``,
    ``"pool"``, ``"socket"``, or a backend instance) with byte-identical
    rows either way.
    """
    result = run_sweep(
        SweepConfig(
            scenarios=("toy-triangle",),
            grid={"demand_gbps": list(demand_values)},
        ),
        workers=workers,
        cache_dir=cache_dir,
        backend=backend,
        name="fig1-sweep",
    )
    result.description = (
        "fixed vs flexible bandwidth on the Fig. 1 toy example, demand swept"
    )
    return result


def run_fig3_sweep(
    n_locals_values: Sequence[int] = (3, 6, 9, 12, 15),
    *,
    n_tasks: int = 30,
    seeds: Tuple[int, ...] = (7,),
    workers: int = 1,
    cache_dir: Optional[str] = None,
    backend: Optional[Any] = None,
) -> ExperimentResult:
    """Fig. 3's latency/bandwidth series via the sweep engine.

    Sweeps local-model count on the 16-site metro mesh (the paper's
    evaluation fabric) for both schedulers; ``round_ms`` is the Fig. 3a
    metric and ``bandwidth_gbps`` the Fig. 3b metric.  Extra seeds add
    replications as additional rows.
    """
    result = run_sweep(
        SweepConfig(
            scenarios=("metro-mesh-uniform",),
            grid={
                "n_locals": list(n_locals_values),
                "n_tasks": [n_tasks],
                "background_flows": [40],
            },
            seeds=seeds,
        ),
        workers=workers,
        cache_dir=cache_dir,
        backend=backend,
        name="fig3-sweep",
    )
    result.description = (
        "round latency and consumed bandwidth vs local models, via the "
        "scenario sweep engine"
    )
    return result


def run_resilience_sweep(
    link_mtbf_values: Sequence[float] = (20_000.0, 40_000.0, 80_000.0),
    *,
    n_tasks: int = 12,
    seeds: Tuple[int, ...] = (0,),
    workers: int = 1,
    cache_dir: Optional[str] = None,
    backend: Optional[Any] = None,
    sqlite_path: Optional[str] = None,
) -> ExperimentResult:
    """Fault intensity vs availability/interruption on the metro mesh.

    Sweeps the link MTBF of the ``metro-mesh-flaky-links`` campaign:
    shorter MTBF means more fail/repair churn, so ``availability`` falls
    and ``tasks_interrupted`` / ``fault_blocks`` climb.  The comparison
    of interest is how the two schedulers' ``fault_reschedules`` differ
    — flexible trees give the repair loop more room to re-route.

    ``sqlite_path`` streams every row (availability and makespan
    included) into the queryable SQLite sink with incremental
    aggregates, and ``backend="socket"`` fans the campaign out over a
    distributed work-stealing queue.
    """
    result = run_sweep(
        SweepConfig(
            scenarios=("metro-mesh-flaky-links",),
            grid={
                "link_mtbf_ms": list(link_mtbf_values),
                "n_tasks": [n_tasks],
            },
            seeds=seeds,
        ),
        workers=workers,
        cache_dir=cache_dir,
        backend=backend,
        sink=SqliteSink(sqlite_path) if sqlite_path is not None else None,
        name="resilience-sweep",
    )
    result.description = (
        "availability and task interruption vs link MTBF under "
        "fault-injected campaign serving"
    )
    return result
