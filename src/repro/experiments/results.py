"""Backward-compatible re-export of the experiment result container.

The container itself lives in :mod:`repro.reporting` so that packages
below the experiments layer — the sweep engine most of all — can depend
on it directly.  Importing ``repro.experiments.results`` used to execute
``repro.experiments.__init__`` first, which pulls in every figure
harness and, through them, the scenario package: a cycle the sweep
engine previously dodged with a lazy in-function import and a
re-declared ``Row`` alias.  Everything that imported from here keeps
working unchanged.
"""

from ..reporting import ExperimentResult, Row

__all__ = ["ExperimentResult", "Row"]
