"""Figure 3: latency (3a) and consumed bandwidth (3b) vs local models.

Protocol, mirroring the paper's evaluation:

* a metro mesh with ROADMs, grooming routers, and servers (the Fig. 2
  testbed's shape);
* background live traffic injected by the traffic generator;
* 30 AI tasks per point, served one at a time (admit → evaluate →
  complete), so every task sees the same background conditions and the
  averages are clean;
* the sweep variable is the number of local models per task;
* both schedulers see identical workloads and identical background load
  (fresh, identically-seeded network per scheduler).

Reported per (scheduler, n_locals): **mean round latency** (training +
communication, the Fig. 3a metric), **mean task bandwidth** (Fig. 3b), and
supporting columns (broadcast/upload split, blocked count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.base import Scheduler
from ..core.evaluation import EvaluationConfig
from ..core.fixed import FixedScheduler
from ..core.flexible import FlexibleScheduler
from ..errors import ConfigurationError
from ..network.graph import Network
from ..network.topologies import metro_mesh
from ..orchestrator.database import TaskStatus
from ..orchestrator.orchestrator import Orchestrator
from ..sim.rng import RandomStreams
from ..tasks.workload import WorkloadConfig, generate_workload
from ..traffic.generator import TrafficGenerator
from .results import ExperimentResult

#: Factory signature for the evaluation fabric.
TopologyFactory = Callable[[], Network]


def _default_topology() -> Network:
    return metro_mesh(n_sites=16, servers_per_site=2)


@dataclass(frozen=True)
class Fig3Config:
    """Sweep parameters for both Fig. 3 panels.

    Attributes:
        n_locals_values: the x-axis (paper sweeps up to 15).
        n_tasks: tasks averaged per point (paper: 30).
        seed: master seed; workloads/traffic derive from it.
        background_flows: persistent background flows injected per run.
        model_names: task model mix.
        demand_gbps: per-flow rate request.
        rounds: training rounds per task.
        topology: fabric factory; defaults to a 16-site metro mesh.
        evaluation: latency-model configuration.
        measurement: "analytic" uses the closed-form evaluator (fast,
            the default); "executed" runs each task's round as events on
            the simulation engine (the ground-truth cross-check).
    """

    n_locals_values: Tuple[int, ...] = (3, 6, 9, 12, 15)
    n_tasks: int = 30
    seed: int = 7
    background_flows: int = 40
    model_names: Tuple[str, ...] = ("resnet18", "resnet50", "bert-base")
    demand_gbps: float = 10.0
    rounds: int = 5
    topology: TopologyFactory = field(default=_default_topology)
    evaluation: EvaluationConfig = field(default_factory=EvaluationConfig)
    measurement: str = "analytic"

    def __post_init__(self) -> None:
        if not self.n_locals_values:
            raise ConfigurationError("n_locals_values must be non-empty")
        if any(k < 1 for k in self.n_locals_values):
            raise ConfigurationError("every n_locals must be >= 1")
        if self.n_tasks < 1:
            raise ConfigurationError(f"n_tasks must be >= 1, got {self.n_tasks}")
        if self.measurement not in ("analytic", "executed"):
            raise ConfigurationError(
                f"measurement must be 'analytic' or 'executed', got "
                f"{self.measurement!r}"
            )


def _schedulers() -> Sequence[Scheduler]:
    return (FixedScheduler(), FlexibleScheduler())


def _run_point(
    config: Fig3Config, scheduler: Scheduler, n_locals: int
) -> Dict[str, float]:
    """Serve the task mix for one (scheduler, n_locals) point."""
    network = config.topology()
    streams = RandomStreams(config.seed)
    traffic = TrafficGenerator(network, streams)
    traffic.inject_static(config.background_flows)

    workload = generate_workload(
        network,
        WorkloadConfig(
            n_tasks=config.n_tasks,
            n_locals=n_locals,
            model_names=config.model_names,
            demand_gbps=config.demand_gbps,
            rounds=config.rounds,
        ),
        streams,
    )
    orchestrator = Orchestrator(
        network, scheduler, evaluation=config.evaluation
    )
    round_ms: List[float] = []
    broadcast_ms: List[float] = []
    upload_ms: List[float] = []
    total_ms: List[float] = []
    bandwidth: List[float] = []
    blocked = 0
    for task in workload:
        record = orchestrator.admit(task)
        if record.status is not TaskStatus.RUNNING:
            blocked += 1
            continue
        report = orchestrator.evaluate(task.task_id)
        if config.measurement == "executed":
            from ..core.simulation import RoundExecutor
            from ..sim.engine import Simulator

            executed = RoundExecutor(
                network, record.schedule, config.evaluation
            ).execute_round(Simulator())
            round_ms.append(executed.total_ms)
            broadcast_ms.append(executed.broadcast_done_ms)
            upload_ms.append(executed.upload_done_ms - executed.broadcast_done_ms)
            total_ms.append(task.rounds * executed.total_ms)
        else:
            round_ms.append(report.round_latency.total_ms)
            broadcast_ms.append(report.round_latency.broadcast_ms)
            upload_ms.append(report.round_latency.upload_ms)
            total_ms.append(report.total_latency_ms)
        bandwidth.append(report.consumed_bandwidth_gbps)
        orchestrator.complete(task.task_id)

    served = len(round_ms)
    if served == 0:
        raise ConfigurationError(
            f"every task blocked at n_locals={n_locals} for "
            f"{scheduler.name}; lower demand or background load"
        )

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    return {
        "served": served,
        "blocked": blocked,
        "round_ms": mean(round_ms),
        "broadcast_ms": mean(broadcast_ms),
        "upload_ms": mean(upload_ms),
        "total_ms": mean(total_ms),
        "bandwidth_gbps": mean(bandwidth),
    }


def run_fig3(config: Optional[Fig3Config] = None) -> ExperimentResult:
    """Run the full sweep once; both panels read from the same rows."""
    config = config or Fig3Config()
    result = ExperimentResult(
        name="fig3",
        description=(
            "latency and consumed bandwidth vs number of local models, "
            "fixed (SPFF) vs flexible (MST)"
        ),
        parameters={
            "n_tasks": config.n_tasks,
            "seed": config.seed,
            "background_flows": config.background_flows,
            "demand_gbps": config.demand_gbps,
            "models": list(config.model_names),
        },
    )
    for n_locals in config.n_locals_values:
        for scheduler in _schedulers():
            point = _run_point(config, scheduler, n_locals)
            result.add(scheduler=scheduler.name, n_locals=n_locals, **point)
    return result


def run_fig3a(config: Optional[Fig3Config] = None) -> ExperimentResult:
    """Fig. 3a — total latency vs number of local models."""
    full = run_fig3(config)
    result = ExperimentResult(
        name="fig3a",
        description="total latency (training + communication) vs local models",
        parameters=full.parameters,
    )
    for row in full.rows:
        result.add(
            scheduler=row["scheduler"],
            n_locals=row["n_locals"],
            round_ms=row["round_ms"],
            total_ms=row["total_ms"],
        )
    return result


def run_fig3b(config: Optional[Fig3Config] = None) -> ExperimentResult:
    """Fig. 3b — consumed bandwidth vs number of local models."""
    full = run_fig3(config)
    result = ExperimentResult(
        name="fig3b",
        description="consumed bandwidth vs local models",
        parameters=full.parameters,
    )
    for row in full.rows:
        result.add(
            scheduler=row["scheduler"],
            n_locals=row["n_locals"],
            bandwidth_gbps=row["bandwidth_gbps"],
        )
    return result
