"""Experiment harnesses regenerating every figure in the paper + ablations.

Each harness returns an :class:`~repro.experiments.results.ExperimentResult`
whose rows are the exact series the paper plots; ``to_table()`` renders
them for terminal inspection and the benchmark suite asserts their shapes.

Index (see DESIGN.md §4):

* :func:`~repro.experiments.fig1.run_fig1` — the qualitative fixed-vs-
  flexible connectivity example of Fig. 1;
* :func:`~repro.experiments.fig3.run_fig3a` — total latency vs number of
  local models (Fig. 3a);
* :func:`~repro.experiments.fig3.run_fig3b` — consumed bandwidth vs
  number of local models (Fig. 3b);
* :mod:`~repro.experiments.ablations` — re-scheduling trade-off, client
  selection, TCP-vs-RDMA, spine-leaf fabric, auxiliary-weight sweep.
"""

from .ablations import (
    run_auxgraph_ablation,
    run_rescheduling_ablation,
    run_selection_ablation,
    run_spineleaf_ablation,
    run_transport_ablation,
)
from .extensions import (
    run_baselines_comparison,
    run_campaign_comparison,
    run_compression_ablation,
    run_failure_recovery,
    run_model_validation,
    run_optical_spectrum,
    run_optimality_gap,
)
from .fig1 import run_fig1
from .fig3 import Fig3Config, run_fig3, run_fig3a, run_fig3b
from .results import ExperimentResult
from .sweeps import run_fig1_sweep, run_fig3_sweep, run_resilience_sweep

__all__ = [
    "run_baselines_comparison",
    "run_campaign_comparison",
    "run_compression_ablation",
    "run_failure_recovery",
    "run_model_validation",
    "run_optical_spectrum",
    "run_optimality_gap",
    "ExperimentResult",
    "run_fig1",
    "Fig3Config",
    "run_fig3",
    "run_fig3a",
    "run_fig3b",
    "run_fig1_sweep",
    "run_fig3_sweep",
    "run_resilience_sweep",
    "run_rescheduling_ablation",
    "run_selection_ablation",
    "run_transport_ablation",
    "run_spineleaf_ablation",
    "run_auxgraph_ablation",
]
