"""Result container shared by the experiment harnesses and the sweep engine.

:class:`ExperimentResult` (and the :data:`Row` alias) used to live in
``repro.experiments.results``, but everything under ``repro.experiments``
sits *above* the scenario layer — its ``__init__`` imports every figure
harness, and those import the sweep engine — so the sweep engine could
only reach the container through a lazy in-function import and had to
re-declare ``Row`` locally.  Hosting the container here, below both
layers, breaks that cycle for good: ``repro.reporting`` depends only on
``repro.errors``, and ``repro.experiments.results`` re-exports it for
backward compatibility.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import ConfigurationError

#: One measurement row: flat column -> value.
Row = Dict[str, Any]


@dataclass
class ExperimentResult:
    """Rows of measurements plus the metadata to interpret them.

    Attributes:
        name: experiment id (matches DESIGN.md §4).
        description: what the rows measure.
        rows: flat records; every row shares the same keys.
        parameters: the configuration that produced the rows.
    """

    name: str
    description: str
    rows: List[Row] = field(default_factory=list)
    parameters: Dict[str, Any] = field(default_factory=dict)

    def add(self, **fields: Any) -> None:
        """Append one measurement row."""
        self.rows.append(dict(fields))

    def columns(self) -> List[str]:
        """Column names in first-appearance order across all rows."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def series(
        self,
        x: str,
        y: str,
        where: Optional[Callable[[Row], bool]] = None,
    ) -> List[Tuple[Any, Any]]:
        """(x, y) pairs from rows passing ``where``, in row order."""
        pairs = []
        for row in self.rows:
            if where is not None and not where(row):
                continue
            if x not in row or y not in row:
                raise ConfigurationError(
                    f"experiment {self.name!r}: row lacks {x!r}/{y!r}"
                )
            pairs.append((row[x], row[y]))
        return pairs

    def column(self, key: str, where: Optional[Callable[[Row], bool]] = None) -> List[Any]:
        """One column's values, optionally filtered."""
        return [row[key] for row in self.rows if where is None or where(row)]

    def to_table(self, float_digits: int = 4) -> str:
        """Render rows as an aligned text table."""
        columns = self.columns()
        if not columns:
            return f"[{self.name}] (no rows)"

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}f}"
            return str(value)

        rendered = [[fmt(row.get(col, "")) for col in columns] for row in self.rows]
        widths = [
            max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
            for i, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
        separator = "  ".join("-" * widths[i] for i in range(len(columns)))
        body = "\n".join(
            "  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
            for r in rendered
        )
        title = f"[{self.name}] {self.description}"
        return "\n".join([title, header, separator, body])

    def to_ascii_chart(
        self,
        x: str,
        y: str,
        group: Optional[str] = None,
        *,
        width: int = 50,
    ) -> str:
        """Render one metric as horizontal ASCII bars, grouped by a column.

        Args:
            x: column labelling each bar (e.g. ``n_locals``).
            y: numeric column giving the bar length.
            group: optional column splitting rows into labelled series.
            width: bar length of the maximum value.

        Example output::

            [fig3b] bandwidth_gbps by n_locals
            fixed-spff    3   320.7  ################
            flexible-mst  3   190.0  #########
            ...
        """
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        values = [row[y] for row in self.rows]
        if not values:
            return f"[{self.name}] (no rows)"
        peak = max(values)
        lines = [f"[{self.name}] {y} by {x}"]
        label_width = max(
            (len(str(row.get(group, ""))) for row in self.rows), default=0
        )
        x_width = max(len(str(row[x])) for row in self.rows)
        for row in self.rows:
            bar = "#" * (round(width * row[y] / peak) if peak > 0 else 0)
            prefix = f"{str(row.get(group, '')):<{label_width}}  " if group else ""
            lines.append(
                f"{prefix}{str(row[x]):>{x_width}}  {row[y]:>10.2f}  {bar}"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialise (name, parameters, rows) as JSON."""
        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "parameters": self.parameters,
                "rows": self.rows,
            },
            indent=2,
            sort_keys=True,
        )

    def save(self, path: str) -> None:
        """Write :meth:`to_json` to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
