"""Shared override-coercion policy for parameterized registries.

Both the scenario registry (:mod:`repro.scenarios.spec`) and the
topology-family registry (:mod:`repro.network.topology.family`) accept
user overrides against a dict of typed defaults.  The coercion rules —
numeric defaults accept any number but never bools, integer defaults
accept integral floats, other defaults require their own type — are one
policy implemented once here, so the two layers can never drift apart
on what the same override value means.
"""

from __future__ import annotations

from typing import Any

from .errors import ConfigurationError


def coerce_override(value: Any, default: Any, *, where: str) -> Any:
    """Coerce ``value`` against its ``default``'s type.

    Rules:

    * numeric (non-bool int/float) defaults accept any number; an
      integer default additionally accepts only integral floats, which
      are converted to int;
    * a ``None`` default documents an optional *numeric* knob: ``None``
      and numbers pass, anything else is rejected (so a bad override
      fails here with a clean error instead of deep in a builder);
    * any other default requires an instance of its own type.

    Args:
        value: the user-supplied override.
        default: the schema default it replaces.
        where: message prefix, e.g. ``"scenario 'x': parameter 'y'"``.

    Raises:
        ConfigurationError: on any mismatch.
    """
    if default is None:
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, (int, float))
        ):
            raise ConfigurationError(
                f"{where} expects a number or None, got {value!r}"
            )
        return value
    numeric = isinstance(default, (int, float)) and not isinstance(default, bool)
    if numeric:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(f"{where} expects a number, got {value!r}")
        if isinstance(default, int) and isinstance(value, float):
            if not value.is_integer():
                raise ConfigurationError(
                    f"{where} expects an integer, got {value!r}"
                )
            value = int(value)
    elif not isinstance(value, type(default)):
        raise ConfigurationError(
            f"{where} expects {type(default).__name__}, got {value!r}"
        )
    return value
