"""Network telemetry: periodic state reports into the database.

"An orchestrator is used to report networking conditions to the database" —
:class:`NetworkMonitor` does exactly that, either on demand
(:meth:`report_once`) or as a periodic process on the simulation engine
(:meth:`start`).
"""

from __future__ import annotations

from typing import Optional

from ..errors import OrchestrationError
from ..network.graph import Network
from ..network.state import NetworkState
from ..sim.engine import Simulator
from ..sim.process import Process
from .database import Database


class NetworkMonitor:
    """Captures :class:`NetworkState` snapshots into the database.

    Args:
        network: the live network to observe.
        database: where snapshots are stored.
        period_ms: reporting interval for the periodic mode.
    """

    def __init__(
        self, network: Network, database: Database, period_ms: float = 100.0
    ) -> None:
        if period_ms <= 0:
            raise OrchestrationError(
                f"period_ms must be > 0, got {period_ms}"
            )
        self._network = network
        self._db = database
        self.period_ms = period_ms
        self._process: Optional[Process] = None

    def report_once(self, time_ms: float = 0.0) -> NetworkState:
        """Capture and store one snapshot; returns it."""
        snapshot = NetworkState.capture(self._network, time_ms)
        self._db.store_snapshot(snapshot)
        return snapshot

    def start(self, sim: Simulator, duration_ms: float) -> Process:
        """Report every ``period_ms`` until ``duration_ms`` of sim time.

        Raises:
            OrchestrationError: if the monitor is already running.
        """
        if self._process is not None and not self._process.finished:
            raise OrchestrationError("monitor already running")

        def body():
            elapsed = 0.0
            while elapsed < duration_ms:
                self.report_once(sim.now)
                yield self.period_ms
                elapsed += self.period_ms
            self.report_once(sim.now)

        self._process = Process(sim, body(), name="network-monitor")
        return self._process
