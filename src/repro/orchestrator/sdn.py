"""The SDN controller: schedules in, flow rules out.

The physical testbed programs ROADMs and routers; here the controller
materialises a :class:`~repro.core.base.TaskSchedule` into per-hop
:class:`FlowRule` entries, tracks them per task for clean removal, and
accounts the reconfiguration cost the re-scheduling trade-off pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.base import TaskSchedule
from ..errors import OrchestrationError


@dataclass(frozen=True)
class FlowRule:
    """One forwarding entry on one device.

    Attributes:
        device: the node holding the rule.
        task_id: owner task (the match key, with ``procedure``).
        procedure: "broadcast" or "upload".
        next_hop: where matching traffic is forwarded.
    """

    device: str
    task_id: str
    procedure: str
    next_hop: str


class SdnController:
    """Installs and removes flow rules derived from schedules.

    Args:
        rule_install_ms: modelled time to program one rule; exposed so the
            orchestrator can charge control latency per (re)configuration.
    """

    def __init__(self, rule_install_ms: float = 0.1) -> None:
        if rule_install_ms < 0:
            raise OrchestrationError(
                f"rule_install_ms must be >= 0, got {rule_install_ms}"
            )
        self.rule_install_ms = rule_install_ms
        self._rules: Dict[str, List[FlowRule]] = {}
        self._reconfigurations = 0
        self._rules_installed_total = 0

    @staticmethod
    def _rules_for(schedule: TaskSchedule) -> List[FlowRule]:
        rules: List[FlowRule] = []
        seen: set = set()

        def add(device: str, procedure: str, next_hop: str) -> None:
            key = (device, procedure, next_hop)
            if key not in seen:
                seen.add(key)
                rules.append(
                    FlowRule(
                        device=device,
                        task_id=schedule.task.task_id,
                        procedure=procedure,
                        next_hop=next_hop,
                    )
                )

        for edge in schedule.broadcast_edge_rates:
            add(edge[0], "broadcast", edge[1])
        for edge in schedule.upload_edge_rates:
            add(edge[0], "upload", edge[1])
        if not schedule.is_tree_based:
            for local, path in schedule.broadcast_routes.items():
                for src, dst in zip(path, path[1:]):
                    add(src, "broadcast", dst)
            for local, path in schedule.upload_routes.items():
                for src, dst in zip(path, path[1:]):
                    add(src, "upload", dst)
        return rules

    def install(self, schedule: TaskSchedule) -> float:
        """Program the schedule's rules.

        Returns:
            The modelled configuration latency in ms.

        Raises:
            OrchestrationError: if the task already has rules installed.
        """
        task_id = schedule.task.task_id
        if task_id in self._rules:
            raise OrchestrationError(
                f"task {task_id!r} already has flow rules; remove them first"
            )
        rules = self._rules_for(schedule)
        self._rules[task_id] = rules
        self._reconfigurations += 1
        self._rules_installed_total += len(rules)
        return len(rules) * self.rule_install_ms

    def remove(self, task_id: str) -> int:
        """Delete all rules of a task; returns how many were removed."""
        return len(self._rules.pop(task_id, []))

    def rules_of(self, task_id: str) -> List[FlowRule]:
        """Live rules of one task (empty when none)."""
        return list(self._rules.get(task_id, []))

    def rules_on(self, device: str) -> List[FlowRule]:
        """Live rules installed on one device, across tasks."""
        return [
            rule
            for rules in self._rules.values()
            for rule in rules
            if rule.device == device
        ]

    @property
    def reconfigurations(self) -> int:
        """Total install operations performed."""
        return self._reconfigurations

    @property
    def total_rules(self) -> int:
        """Live rules currently installed."""
        return sum(len(rules) for rules in self._rules.values())
