"""The programmable orchestrator of the paper's Fig. 2, in software.

Components map one-to-one onto the testbed's control plane:

* :class:`~repro.orchestrator.database.Database` — stores AI tasks,
  schedules, and reported networking conditions;
* :class:`~repro.orchestrator.sdn.SdnController` — turns schedules into
  flow rules and counts reconfigurations;
* :class:`~repro.orchestrator.taskmanager.AITaskManager` — admits new AI
  tasks and tracks their lifecycle;
* :class:`~repro.orchestrator.monitor.NetworkMonitor` — periodically
  reports network state into the database;
* :class:`~repro.orchestrator.orchestrator.Orchestrator` — the façade
  that embeds the scheduling policy and coordinates everything.
"""

from .campaign import CampaignResult, CampaignRunner, TaskOutcome, run_scenario
from .database import Database, TaskRecord, TaskStatus
from .monitor import NetworkMonitor
from .orchestrator import Orchestrator, build_servers_for
from .sdn import FlowRule, SdnController
from .taskmanager import AITaskManager

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "TaskOutcome",
    "run_scenario",
    "Database",
    "TaskRecord",
    "TaskStatus",
    "NetworkMonitor",
    "Orchestrator",
    "build_servers_for",
    "FlowRule",
    "SdnController",
    "AITaskManager",
]
