"""The AI task manager: admission queue and lifecycle transitions.

"An AI task manager is responsible for managing new AI tasks and storing
them into [the] database."  This component validates incoming tasks
(optionally applying a client-selection strategy first), inserts them into
the database, and keeps the pending queue the orchestrator drains.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..errors import OrchestrationError
from ..tasks.aitask import AITask
from .database import Database, TaskRecord, TaskStatus

#: Optional transformation applied at admission (client selection).
SelectionFn = Callable[[AITask], AITask]


class AITaskManager:
    """Admits tasks into the database and exposes the pending queue.

    Args:
        database: the shared store.
        selection: optional client-selection strategy applied on
            admission (challenge #1); identity when None.
    """

    def __init__(
        self, database: Database, selection: Optional[SelectionFn] = None
    ) -> None:
        self._db = database
        self._selection = selection
        self._pending: Deque[str] = deque()

    def submit(self, task: AITask) -> TaskRecord:
        """Admit a new task (after client selection) and queue it.

        Raises:
            OrchestrationError: on duplicate ids (from the database).
        """
        admitted = self._selection(task) if self._selection else task
        if admitted.task_id != task.task_id:
            raise OrchestrationError(
                "selection strategies must not change the task id "
                f"({task.task_id!r} -> {admitted.task_id!r})"
            )
        record = self._db.insert_task(admitted)
        self._pending.append(admitted.task_id)
        return record

    def next_pending(self) -> Optional[TaskRecord]:
        """Pop the oldest queued task still PENDING (None when drained)."""
        while self._pending:
            task_id = self._pending.popleft()
            record = self._db.record(task_id)
            if record.status is TaskStatus.PENDING:
                return record
        return None

    def requeue(self, task_id: str) -> None:
        """Put a blocked task back at the end of the queue."""
        record = self._db.record(task_id)
        record.status = TaskStatus.PENDING
        self._pending.append(task_id)

    @property
    def pending_count(self) -> int:
        """Queued ids that are still PENDING."""
        return sum(
            1
            for task_id in self._pending
            if self._db.record(task_id).status is TaskStatus.PENDING
        )

    def pending_ids(self) -> List[str]:
        return [
            task_id
            for task_id in self._pending
            if self._db.record(task_id).status is TaskStatus.PENDING
        ]
