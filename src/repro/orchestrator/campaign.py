"""Campaign runner: whole task lifecycles on the simulation engine.

Everything else in the orchestrator package acts on one instant; the
campaign runner plays a *timeline*: tasks are admitted at their arrival
times, run their synchronous training rounds as cooperative processes
(each round's duration re-evaluated against the live network, so
re-scheduling and departures change subsequent rounds), an optional
periodic re-scheduling pass exercises the challenge-#1 policy, and
completed tasks release their resources — the closest software analogue
of letting the paper's testbed run for an afternoon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Union

from .. import obs
from ..core.base import Scheduler
from ..core.prediction import IterationPredictor
from ..errors import OrchestrationError
from ..sim.engine import Simulator
from ..sim.process import Process
from ..tasks.workload import TaskWorkload
from .database import TaskStatus
from .orchestrator import Orchestrator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience.injector import FaultInjector
    from ..scenarios.spec import ScenarioInstance, ScenarioSpec


@dataclass
class TaskOutcome:
    """Lifecycle record of one task in a campaign.

    Attributes:
        task_id: the task.
        admitted_ms: when admission succeeded (None if blocked at entry).
        completed_ms: when the final round finished (None if unfinished).
        rounds_run: rounds actually executed.
        round_durations_ms: duration of each executed round.
        reschedules: times the task's paths were recomputed mid-flight.
    """

    task_id: str
    admitted_ms: Optional[float] = None
    completed_ms: Optional[float] = None
    rounds_run: int = 0
    round_durations_ms: List[float] = field(default_factory=list)
    reschedules: int = 0

    @property
    def finished(self) -> bool:
        return self.completed_ms is not None


@dataclass(frozen=True)
class CampaignResult:
    """Aggregate outcome of a campaign run.

    Attributes:
        outcomes: per-task lifecycle records (admission order).
        makespan_ms: completion time of the last finishing task.
        blocked: tasks that never got admitted.
        availability: per-run fault/availability metrics when a fault
            injector played a timeline during the run (None otherwise);
            see :meth:`repro.resilience.AvailabilityAccountant.metrics`.
        deadline_tasks: tasks that carried a completion deadline.
        deadline_misses: deadline tasks that finished past
            ``arrival_ms + deadline_ms`` — or never finished at all
            (blocked or unfinished deadline tasks count as misses).
    """

    outcomes: Dict[str, TaskOutcome]
    makespan_ms: float
    blocked: int
    availability: Optional[Dict[str, float]] = None
    deadline_tasks: int = 0
    deadline_misses: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.finished)

    @property
    def mean_round_ms(self) -> float:
        durations = [
            d for o in self.outcomes.values() for d in o.round_durations_ms
        ]
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    @property
    def total_reschedules(self) -> int:
        return sum(o.reschedules for o in self.outcomes.values())


class CampaignRunner:
    """Plays a workload through an orchestrator on simulated time.

    Args:
        orchestrator: admission/scheduling/completion machinery.
        workload: the task mix (arrival times honoured).
        reschedule_period_ms: run ``orchestrator.reschedule_pass()``
            every period (requires a configured rescheduling policy);
            ``None`` disables the loop.
        predictor: optional iteration predictor fed with every round.
        injector: optional :class:`~repro.resilience.FaultInjector`; its
            fail/repair timeline is scheduled alongside the arrivals and
            dispatched through the orchestrator's failure handlers, and
            its availability metrics land on the result.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        workload: TaskWorkload,
        *,
        reschedule_period_ms: Optional[float] = None,
        predictor: Optional[IterationPredictor] = None,
        injector: "Optional[FaultInjector]" = None,
    ) -> None:
        if reschedule_period_ms is not None:
            if reschedule_period_ms <= 0:
                raise OrchestrationError(
                    f"reschedule_period_ms must be > 0, got {reschedule_period_ms}"
                )
            if orchestrator.rescheduling is None:
                raise OrchestrationError(
                    "periodic rescheduling needs a policy on the orchestrator"
                )
        self._orchestrator = orchestrator
        self._workload = workload
        self._period = reschedule_period_ms
        self._predictor = predictor
        self._injector = injector

    def run(self, until: Optional[float] = None) -> CampaignResult:
        """Execute the campaign; returns once all work (or ``until``) ends."""
        sim = Simulator()
        orchestrator = self._orchestrator
        outcomes: Dict[str, TaskOutcome] = {
            task.task_id: TaskOutcome(task_id=task.task_id)
            for task in self._workload
        }
        finish_times: List[float] = []

        def training_loop(task_id: str, rounds: int):
            outcome = outcomes[task_id]
            for _ in range(rounds):
                record = orchestrator.database.record(task_id)
                if record.status is not TaskStatus.RUNNING:
                    return
                duration = orchestrator.evaluate(task_id).round_latency.total_ms
                yield duration
                outcome.rounds_run += 1
                outcome.round_durations_ms.append(duration)
                outcome.reschedules = record.reschedules
                record.remaining_rounds -= 1
                if self._predictor is not None:
                    self._predictor.observe(task_id, duration)
            record = orchestrator.database.record(task_id)
            if record.status is TaskStatus.RUNNING:
                orchestrator.complete(task_id)
                outcome.completed_ms = sim.now
                finish_times.append(sim.now)

        def admit(task) -> None:
            record = orchestrator.admit(task)
            if record.status is not TaskStatus.RUNNING:
                return
            outcomes[task.task_id].admitted_ms = sim.now
            Process(
                sim,
                training_loop(task.task_id, record.task.rounds),
                name=f"train:{task.task_id}",
            )

        for task in self._workload:
            sim.schedule(
                task.arrival_ms, lambda t=task: admit(t), name=f"admit:{task.task_id}"
            )

        if self._injector is not None:
            self._injector.attach(sim, orchestrator)

        if self._period is not None:
            def reschedule_loop():
                while True:
                    yield self._period
                    if not orchestrator.database.running():
                        return
                    orchestrator.reschedule_pass()

            Process(sim, reschedule_loop(), name="reschedule-loop")

        registry = obs.active()
        if registry is None:
            sim.run(until=until)
        else:
            # Bind the simulator's clock so every span closed during the
            # campaign (scheduling, this whole run) also reports how
            # much *simulated* time elapsed inside it.
            previous_clock = registry.bind_sim_clock(lambda: sim.now)
            try:
                with registry.span(
                    "campaign", scheduler=orchestrator.scheduler.name
                ):
                    sim.run(until=until)
            finally:
                registry.bind_sim_clock(previous_clock)
        blocked = sum(
            1 for o in outcomes.values() if o.admitted_ms is None
        )
        availability: Optional[Dict[str, float]] = None
        if self._injector is not None:
            self._injector.finalize(sim.now)
            availability = self._injector.accountant.metrics()
        deadline_tasks = 0
        deadline_misses = 0
        for task in self._workload:
            if task.deadline_ms is None:
                continue
            deadline_tasks += 1
            outcome = outcomes[task.task_id]
            if (
                outcome.completed_ms is None
                or outcome.completed_ms > task.arrival_ms + task.deadline_ms
            ):
                deadline_misses += 1
        return CampaignResult(
            outcomes=outcomes,
            makespan_ms=max(finish_times) if finish_times else sim.now,
            blocked=blocked,
            availability=availability,
            deadline_tasks=deadline_tasks,
            deadline_misses=deadline_misses,
        )


def orchestrator_for(
    instance: "ScenarioInstance", scheduler: Optional[Scheduler] = None
) -> Orchestrator:
    """An orchestrator on the instance's fabric with its background load.

    The single wiring recipe shared by ``run_scenario`` and the sweep
    engine, so both entry points serve identical state for the same
    ``(scenario, params, seed)``.
    """
    # Imported lazily: repro.scenarios imports orchestrator machinery.
    from ..core.flexible import FlexibleScheduler
    from ..traffic.generator import TrafficGenerator

    traffic = TrafficGenerator(instance.network, instance.streams)
    traffic.inject_static(int(instance.params.get("background_flows", 0)))
    return Orchestrator(instance.network, scheduler or FlexibleScheduler())


def campaign_runner_for(
    instance: "ScenarioInstance",
    scheduler: Optional[Scheduler] = None,
    *,
    reschedule_period_ms: Optional[float] = None,
) -> CampaignRunner:
    """A campaign runner for the instance, fault injector included."""
    from ..resilience.injector import FaultInjector

    injector = (
        FaultInjector(instance.fault_timeline)
        if instance.fault_timeline is not None
        else None
    )
    return CampaignRunner(
        orchestrator_for(instance, scheduler),
        instance.workload,
        reschedule_period_ms=reschedule_period_ms,
        injector=injector,
    )


def run_scenario(
    spec: "Union[str, ScenarioSpec]",
    params: Optional[Mapping[str, Any]] = None,
    *,
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    reschedule_period_ms: Optional[float] = None,
    until: Optional[float] = None,
) -> CampaignResult:
    """Play one registered scenario as a full campaign timeline.

    This is the scenario-registry entry point into the campaign runner:
    the spec (by name or object) is instantiated deterministically for
    ``(params, seed)``, its background flows are injected, its task mix
    is admitted at the generated arrival times on simulated time, and —
    when the spec carries a fault profile — its fail/repair timeline is
    played through the orchestrator mid-campaign.

    Args:
        spec: a registered scenario name or a :class:`ScenarioSpec`.
        params: parameter overrides (validated against the spec).
        seed: master seed for topology randomness, failures, and tasks.
        scheduler: scheduling policy; flexible (MST) when omitted.
        reschedule_period_ms / until: forwarded to the campaign runner.
    """
    # Imported lazily: repro.scenarios imports orchestrator machinery.
    from ..scenarios.registry import get_scenario

    if isinstance(spec, str):
        spec = get_scenario(spec)
    instance = spec.instantiate(params, seed=seed)
    runner = campaign_runner_for(
        instance, scheduler, reschedule_period_ms=reschedule_period_ms
    )
    return runner.run(until=until)
