"""The orchestrator façade: admission → placement → scheduling → rules.

This is the paper's logically-centralised controller.  For every admitted
task it deploys model containers through the computing manager, asks the
embedded scheduling policy for routes/trees (reserving network capacity),
programs the SDN controller, and records everything in the database.  It
also runs the re-scheduling loop of challenge #1 on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import obs
from ..compute.container import Container, ResourceDemand
from ..compute.manager import ComputingManager
from ..compute.server import Server
from ..core.base import Scheduler
from ..core.evaluation import EvaluationConfig, ScheduleEvaluator
from ..core.metrics import TaskReport
from ..core.rescheduling import ReschedulingPolicy
from ..errors import OrchestrationError, PlacementError, SchedulingError
from ..network import routing
from ..network.graph import Network
from ..tasks.aitask import AITask
from .database import Database, TaskRecord, TaskStatus
from .sdn import SdnController
from .taskmanager import AITaskManager, SelectionFn


def build_servers_for(
    network: Network,
    manager: ComputingManager,
    *,
    cpu_cores: float = 64.0,
    gpu_gflops: float = 100_000.0,
    memory_gb: float = 256.0,
) -> List[Server]:
    """Register one server per model-hosting node of the network."""
    servers = []
    for node_name in network.servers():
        server = Server(
            f"srv@{node_name}",
            node_name,
            cpu_cores=cpu_cores,
            gpu_gflops=gpu_gflops,
            memory_gb=memory_gb,
        )
        manager.register(server)
        servers.append(server)
    return servers


class Orchestrator:
    """Coordinates scheduling, placement, and flow programming.

    Args:
        network: the live data plane.
        scheduler: the embedded scheduling policy (fixed or flexible).
        compute: computing manager with registered servers; when None a
            default server is created at every model-hosting node.
        database / sdn / selection: control-plane collaborators, created
            with defaults when omitted.
        rescheduling: policy for the re-scheduling loop (None disables).
        evaluation: evaluation model used by :meth:`evaluate`.
        container_gflops: accelerator rate reserved per model container.
    """

    def __init__(
        self,
        network: Network,
        scheduler: Scheduler,
        *,
        compute: Optional[ComputingManager] = None,
        database: Optional[Database] = None,
        sdn: Optional[SdnController] = None,
        selection: Optional[SelectionFn] = None,
        rescheduling: Optional[ReschedulingPolicy] = None,
        evaluation: Optional[EvaluationConfig] = None,
        container_gflops: float = 50_000.0,
    ) -> None:
        if container_gflops <= 0:
            raise OrchestrationError(
                f"container_gflops must be > 0, got {container_gflops}"
            )
        self.network = network
        self.scheduler = scheduler
        self.database = database or Database()
        self.sdn = sdn or SdnController()
        self.tasks = AITaskManager(self.database, selection)
        self.rescheduling = rescheduling
        self.evaluation = evaluation or EvaluationConfig()
        self._container_gflops = container_gflops
        if compute is None:
            compute = ComputingManager()
            build_servers_for(network, compute)
        self.compute = compute
        self._clock_ms = 0.0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _container_id(self, task_id: str, node: str) -> str:
        return f"{task_id}:{node}"

    def _deploy_containers(self, task: AITask) -> List[str]:
        """Place one container per model node; rolls back on failure."""
        demand = ResourceDemand(
            cpu_cores=4.0,
            gpu_gflops=self._container_gflops,
            memory_gb=max(4.0, task.size_mb / 2000.0),
        )
        placed: List[str] = []
        try:
            for index, node in enumerate([task.global_node, *task.local_nodes]):
                role = "global" if index == 0 else f"local-{index - 1}"
                container = Container(
                    container_id=self._container_id(task.task_id, node),
                    demand=demand,
                    role=role,
                )
                self.compute.deploy(container, node=node)
                placed.append(container.container_id)
        except PlacementError:
            for container_id in placed:
                self.compute.destroy(container_id)
            raise
        return placed

    def _destroy_containers(self, task: AITask) -> None:
        for node in [task.global_node, *task.local_nodes]:
            try:
                self.compute.destroy(self._container_id(task.task_id, node))
            except PlacementError:
                pass  # never deployed (admission failed mid-way)

    def _speed_fn(self, task: AITask):
        def speed(node: str) -> float:
            container_id = self._container_id(task.task_id, node)
            try:
                return self.compute.container_gflops(container_id)
            except PlacementError:
                return self._container_gflops

        return speed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def admit(self, task: AITask) -> TaskRecord:
        """Admit, place, schedule, and program one task.

        On scheduling or placement failure the task is recorded BLOCKED
        with every side effect rolled back.
        """
        record = self.tasks.submit(task)
        admitted = record.task  # post-selection task
        self._clock_ms = max(self._clock_ms, admitted.arrival_ms)
        try:
            self._deploy_containers(admitted)
        except PlacementError as exc:
            record.status = TaskStatus.BLOCKED
            self.database.log(self._clock_ms, f"{admitted.task_id}: placement failed: {exc}")
            obs.inc("orchestrator.blocked", scheduler=self.scheduler.name)
            return record
        try:
            schedule = self.scheduler.schedule(admitted, self.network)
        except SchedulingError as exc:
            self._destroy_containers(admitted)
            record.status = TaskStatus.BLOCKED
            self.database.log(self._clock_ms, f"{admitted.task_id}: scheduling failed: {exc}")
            obs.inc("orchestrator.blocked", scheduler=self.scheduler.name)
            return record
        config_ms = self.sdn.install(schedule)
        record.schedule = schedule
        record.status = TaskStatus.RUNNING
        record.remaining_rounds = admitted.rounds
        self.database.log(
            self._clock_ms,
            f"{admitted.task_id}: running via {self.scheduler.name} "
            f"({config_ms:.3f} ms configuration)",
        )
        if obs.active() is not None:
            # Reservation pressure peaks right after a successful admit;
            # sampling here (enabled-only, O(links)) captures the
            # hotspot profile without touching the admission path.
            obs.inc("orchestrator.admitted", scheduler=self.scheduler.name)
            obs.observe_network(self.network, scheduler=self.scheduler.name)
        return record

    def complete(self, task_id: str) -> TaskRecord:
        """Finish a task: free capacity, rules, and containers."""
        record = self.database.record(task_id)
        if record.status is not TaskStatus.RUNNING:
            raise OrchestrationError(
                f"task {task_id!r} is {record.status.value}, not running"
            )
        assert record.schedule is not None
        self.scheduler.release(record.schedule, self.network)
        self.sdn.remove(task_id)
        self._destroy_containers(record.task)
        record.status = TaskStatus.COMPLETED
        record.remaining_rounds = 0
        self.database.log(self._clock_ms, f"{task_id}: completed")
        return record

    def evaluate(self, task_id: str) -> TaskReport:
        """Evaluate a RUNNING task's schedule under the current config."""
        record = self.database.record(task_id)
        if record.schedule is None:
            raise OrchestrationError(f"task {task_id!r} has no schedule")
        evaluator = ScheduleEvaluator(
            self.network, self.evaluation, speed_fn=self._speed_fn(record.task)
        )
        return evaluator.report(record.schedule)

    # ------------------------------------------------------------------
    # Re-scheduling loop (challenge #1)
    # ------------------------------------------------------------------
    def reschedule_pass(self) -> Dict[str, bool]:
        """Offer every RUNNING task a re-schedule; apply approved ones.

        Returns:
            task id -> whether it was re-scheduled.

        Raises:
            OrchestrationError: when no rescheduling policy is configured.
        """
        if self.rescheduling is None:
            raise OrchestrationError("no rescheduling policy configured")
        outcomes: Dict[str, bool] = {}
        for record in self.database.running():
            assert record.schedule is not None
            decision = self.rescheduling.evaluate(
                record.task,
                record.schedule,
                self.network,
                self.scheduler,
                remaining_rounds=record.remaining_rounds,
                evaluation=self.evaluation,
            )
            outcomes[record.task.task_id] = decision.reschedule
            self.database.log(
                self._clock_ms,
                f"{record.task.task_id}: reschedule={decision.reschedule} "
                f"({decision.reason})",
            )
            if not decision.reschedule:
                continue
            self.scheduler.release(record.schedule, self.network)
            self.sdn.remove(record.task.task_id)
            try:
                new_schedule = self.scheduler.schedule(record.task, self.network)
            except SchedulingError:
                # The prediction was made on a scratch copy; if the live
                # network rejects, restore nothing and block the task.
                # BLOCKED is terminal, so free its compute too.
                self._destroy_containers(record.task)
                record.status = TaskStatus.BLOCKED
                record.schedule = None
                continue
            self.sdn.install(new_schedule)
            record.schedule = new_schedule
            record.reschedules += 1
        return outcomes

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def advance_clock(self, time_ms: float) -> None:
        """Move the control-plane clock forward (event log timestamps)."""
        self._clock_ms = max(self._clock_ms, time_ms)

    def _prune_path_cache(self, dead_nodes: "tuple[str, ...]" = ()) -> None:
        """Eagerly drop routing-cache entries made stale by a topology event.

        Failures and repairs change weights on the affected links; every
        cached shortest-path result that read one of them is dead.  The
        cache would notice lazily on the next lookup, but campaigns with
        long fault timelines reschedule in bursts right after each event
        — pruning here keeps memory bounded and the post-event lookups
        cheap (CSR-kernel entries the change-cut clears are repaired in
        place rather than dropped).

        ``dead_nodes`` names devices that just went down: entries whose
        source or terminal set contains one are dropped by containment,
        covering results that never read any of the dead node's links
        (e.g. a tree rooted at the now-dead node).
        """
        cache = routing.peek_cache(self.network)
        if cache is not None:
            cache.prune(dead_nodes=dead_nodes)

    def handle_link_failure(self, u: str, v: str) -> Dict[str, bool]:
        """Fail a link and repair every running task routed across it.

        Affected tasks have their reservations released and are re-run
        through the scheduler on the degraded topology.  Tasks that can
        be re-routed keep RUNNING (with fresh flow rules); tasks that
        cannot are marked BLOCKED.

        Returns:
            affected task id -> True if repaired, False if blocked.
        """
        affected = [
            owner
            for owner in self.network.owners_on_link(u, v)
            if owner in {r.task.task_id for r in self.database.running()}
        ]
        self.network.fail_link(u, v)
        self._prune_path_cache()
        self.database.log(self._clock_ms, f"link {u}-{v} failed; {len(affected)} tasks affected")
        outcomes: Dict[str, bool] = {}
        for task_id in affected:
            record = self.database.record(task_id)
            assert record.schedule is not None
            self.scheduler.release(record.schedule, self.network)
            self.sdn.remove(task_id)
            try:
                record.schedule = self.scheduler.schedule(record.task, self.network)
            except SchedulingError as exc:
                self._destroy_containers(record.task)
                record.schedule = None
                record.status = TaskStatus.BLOCKED
                outcomes[task_id] = False
                self.database.log(
                    self._clock_ms, f"{task_id}: blocked after failure: {exc}"
                )
                continue
            self.sdn.install(record.schedule)
            record.reschedules += 1
            outcomes[task_id] = True
            self.database.log(self._clock_ms, f"{task_id}: re-routed around {u}-{v}")
        return outcomes

    def handle_link_restore(self, u: str, v: str) -> None:
        """Bring a failed link back (re-optimisation is the policy's job)."""
        self.network.restore_link(u, v)
        self._prune_path_cache()
        self.database.log(self._clock_ms, f"link {u}-{v} restored")

    def handle_node_failure(self, name: str) -> Dict[str, bool]:
        """Take a device down and repair every running task it carried.

        Tasks merely *routed* through the node are re-run through the
        scheduler on the degraded topology, exactly like a link failure.
        Tasks with a model endpoint *on* the node (its global or a local
        model host) cannot survive the outage: their containers die with
        the device, so they are torn down and marked BLOCKED.

        Returns:
            affected task id -> True if re-routed, False if blocked.
        """
        running = {r.task.task_id: r for r in self.database.running()}
        affected = set()
        for neighbor in self.network.neighbors(name):
            affected.update(
                owner
                for owner in self.network.owners_on_link(name, neighbor)
                if owner in running
            )
        hosted = {
            task_id
            for task_id, record in running.items()
            if name == record.task.global_node
            or name in record.task.local_nodes
        }
        affected |= hosted
        self.network.fail_node(name)
        self._prune_path_cache(dead_nodes=(name,))
        self.database.log(
            self._clock_ms,
            f"node {name} failed; {len(affected)} tasks affected",
        )
        outcomes: Dict[str, bool] = {}
        for task_id in sorted(affected):
            record = running[task_id]
            assert record.schedule is not None
            self.scheduler.release(record.schedule, self.network)
            self.sdn.remove(task_id)
            if task_id in hosted:
                self._destroy_containers(record.task)
                record.schedule = None
                record.status = TaskStatus.BLOCKED
                outcomes[task_id] = False
                self.database.log(
                    self._clock_ms,
                    f"{task_id}: blocked, model host {name} is down",
                )
                continue
            try:
                record.schedule = self.scheduler.schedule(record.task, self.network)
            except SchedulingError as exc:
                self._destroy_containers(record.task)
                record.schedule = None
                record.status = TaskStatus.BLOCKED
                outcomes[task_id] = False
                self.database.log(
                    self._clock_ms, f"{task_id}: blocked after node failure: {exc}"
                )
                continue
            self.sdn.install(record.schedule)
            record.reschedules += 1
            outcomes[task_id] = True
            self.database.log(self._clock_ms, f"{task_id}: re-routed around {name}")
        return outcomes

    def handle_node_restore(self, name: str) -> None:
        """Bring a downed device back into service."""
        self.network.restore_node(name)
        self._prune_path_cache()
        self.database.log(self._clock_ms, f"node {name} restored")

    def handle_link_drain(self, u: str, v: str) -> Dict[str, bool]:
        """Proactively drain a span ahead of a forecast failure.

        The link is taken out of service *now* — same mechanism as a
        failure, so the scheduler immediately stops considering it — and
        every running task routed across it is moved onto the rest of
        the fabric while the span is still nominally healthy.  When the
        forecast fault then lands, nothing is left on the span to
        interrupt.  A no-op when the link is already down (an earlier
        fault beat the forecast).

        Returns:
            affected task id -> True if drained off, False if blocked.
        """
        link = self.network.link(u, v)
        if link.failed:
            self.database.log(
                self._clock_ms, f"link {u}-{v} drain skipped: already down"
            )
            return {}
        affected = [
            owner
            for owner in self.network.owners_on_link(u, v)
            if owner in {r.task.task_id for r in self.database.running()}
        ]
        self.network.fail_link(u, v)
        self._prune_path_cache()
        self.database.log(
            self._clock_ms,
            f"link {u}-{v} draining ahead of forecast fault; "
            f"{len(affected)} tasks to move",
        )
        outcomes: Dict[str, bool] = {}
        for task_id in affected:
            record = self.database.record(task_id)
            assert record.schedule is not None
            self.scheduler.release(record.schedule, self.network)
            self.sdn.remove(task_id)
            try:
                record.schedule = self.scheduler.schedule(record.task, self.network)
            except SchedulingError as exc:
                self._destroy_containers(record.task)
                record.schedule = None
                record.status = TaskStatus.BLOCKED
                outcomes[task_id] = False
                self.database.log(
                    self._clock_ms, f"{task_id}: blocked during drain: {exc}"
                )
                continue
            self.sdn.install(record.schedule)
            record.reschedules += 1
            outcomes[task_id] = True
            self.database.log(self._clock_ms, f"{task_id}: drained off {u}-{v}")
        return outcomes

    def handle_link_capacity(
        self, u: str, v: str, capacity_gbps: float
    ) -> Dict[str, bool]:
        """Change a live link's capacity (partial degradation / recovery).

        Shrinking below current use evicts running tasks off the span —
        in sorted owner order, one at a time, until the remaining
        reservations fit — and re-runs each through the scheduler, which
        may legitimately re-place it on the degraded span at a rate that
        fits.  Background flows are never evicted; a span kept
        oversubscribed by unmovable flows is left carrying them (the
        reservation invariant is enforced at admission, not
        retroactively).  Growing capacity never moves anybody:
        re-optimisation is the rescheduling policy's job.

        Returns:
            evicted task id -> True if re-scheduled, False if blocked.
        """
        link = self.network.link(u, v)
        link.capacity_gbps = capacity_gbps
        self._prune_path_cache()
        self.database.log(
            self._clock_ms,
            f"link {u}-{v} capacity set to {capacity_gbps:g} Gbps",
        )
        outcomes: Dict[str, bool] = {}
        while (
            link.used_gbps(u, v) > capacity_gbps + 1e-9
            or link.used_gbps(v, u) > capacity_gbps + 1e-9
        ):
            running = {r.task.task_id: r for r in self.database.running()}
            movable = [
                owner
                for owner in self.network.owners_on_link(u, v)
                if owner in running
            ]
            if not movable:
                break
            task_id = movable[0]
            record = running[task_id]
            assert record.schedule is not None
            self.scheduler.release(record.schedule, self.network)
            self.sdn.remove(task_id)
            try:
                record.schedule = self.scheduler.schedule(record.task, self.network)
            except SchedulingError as exc:
                self._destroy_containers(record.task)
                record.schedule = None
                record.status = TaskStatus.BLOCKED
                outcomes[task_id] = False
                self.database.log(
                    self._clock_ms,
                    f"{task_id}: blocked after degrade of {u}-{v}: {exc}",
                )
                continue
            self.sdn.install(record.schedule)
            record.reschedules += 1
            outcomes[task_id] = True
            self.database.log(
                self._clock_ms, f"{task_id}: moved off degraded {u}-{v}"
            )
        return outcomes

    # ------------------------------------------------------------------
    # Batch driving
    # ------------------------------------------------------------------
    def run_workload(self, tasks) -> List[TaskReport]:
        """Admit every task, evaluate the RUNNING ones, return reports."""
        reports: List[TaskReport] = []
        for task in tasks:
            record = self.admit(task)
            if record.status is TaskStatus.RUNNING:
                reports.append(self.evaluate(task.task_id))
        return reports

    @property
    def blocking_ratio(self) -> float:
        """Fraction of admitted tasks that ended up BLOCKED."""
        records = self.database.records()
        if not records:
            return 0.0
        blocked = sum(
            1 for record in records if record.status is TaskStatus.BLOCKED
        )
        return blocked / len(records)
