"""The orchestrator's database: tasks, schedules, telemetry, event log."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.base import TaskSchedule
from ..errors import OrchestrationError
from ..network.state import NetworkState
from ..tasks.aitask import AITask


class TaskStatus(enum.Enum):
    """Lifecycle of an admitted AI task."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    BLOCKED = "blocked"


@dataclass
class TaskRecord:
    """Everything the database knows about one task.

    Attributes:
        task: the request (possibly client-selected subset).
        status: lifecycle state.
        schedule: live schedule while RUNNING.
        remaining_rounds: rounds left to run.
        reschedules: how many times the task was re-scheduled.
    """

    task: AITask
    status: TaskStatus = TaskStatus.PENDING
    schedule: Optional[TaskSchedule] = None
    remaining_rounds: int = 0
    reschedules: int = 0


class Database:
    """In-memory store with the interfaces the other components use."""

    def __init__(self, max_snapshots: int = 1000) -> None:
        if max_snapshots < 1:
            raise OrchestrationError(
                f"max_snapshots must be >= 1, got {max_snapshots}"
            )
        self._tasks: Dict[str, TaskRecord] = {}
        self._snapshots: List[NetworkState] = []
        self._events: List[Tuple[float, str]] = []
        self._max_snapshots = max_snapshots

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def insert_task(self, task: AITask) -> TaskRecord:
        """Store a newly admitted task.

        Raises:
            OrchestrationError: on duplicate task ids.
        """
        if task.task_id in self._tasks:
            raise OrchestrationError(f"duplicate task {task.task_id!r}")
        record = TaskRecord(task=task, remaining_rounds=task.rounds)
        self._tasks[task.task_id] = record
        return record

    def record(self, task_id: str) -> TaskRecord:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise OrchestrationError(f"unknown task {task_id!r}") from None

    def records(self, status: Optional[TaskStatus] = None) -> List[TaskRecord]:
        """Task records in admission order, optionally filtered."""
        return [
            record
            for record in self._tasks.values()
            if status is None or record.status is status
        ]

    def running(self) -> List[TaskRecord]:
        return self.records(TaskStatus.RUNNING)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def store_snapshot(self, snapshot: NetworkState) -> None:
        """Keep the latest ``max_snapshots`` network states."""
        self._snapshots.append(snapshot)
        if len(self._snapshots) > self._max_snapshots:
            self._snapshots.pop(0)

    @property
    def latest_snapshot(self) -> Optional[NetworkState]:
        return self._snapshots[-1] if self._snapshots else None

    @property
    def snapshot_count(self) -> int:
        return len(self._snapshots)

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def log(self, time_ms: float, message: str) -> None:
        self._events.append((time_ms, message))

    @property
    def events(self) -> List[Tuple[float, str]]:
        return list(self._events)
