"""Trend rendering: ``repro bench report``.

Turns the recorded trajectory — legacy snapshot record first, then
every ``BENCH_HISTORY.jsonl`` line — into plain-text tables:

* the default view tracks each suite's *headline* metric (declared in
  its ``@bench_suite`` registration) across records, so "did the
  scheduler-cache speedup drift?" is one glance;
* ``--suite NAME`` expands one suite into every scalar metric it
  reports, across the same records.

Records are labelled by git SHA and date; smoke records are marked
``(smoke)`` because their timing numbers are deliberately tiny and must
not be read as regressions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .registry import list_suites, metric_at

#: Fallback headline when a suite never declared one.
DEFAULT_HEADLINE = "elapsed_s"


def record_label(record: Dict[str, Any]) -> str:
    if record.get("legacy"):
        return "legacy"
    sha = record.get("git_sha") or "?"
    stamp = record.get("timestamp") or ""
    day = stamp.split("T")[0] if isinstance(stamp, str) else ""
    label = f"{sha}@{day}" if day else sha
    if record.get("smoke"):
        label += " (smoke)"
    return label


def _headlines() -> Dict[str, str]:
    """suite name -> headline metric path, from the live registry."""
    return {
        suite.name: suite.headline or DEFAULT_HEADLINE
        for suite in list_suites()
    }


def _format(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _render_table(
    header: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    widths = [
        max(len(str(header[col])), *(len(row[col]) for row in rows))
        if rows
        else len(str(header[col]))
        for col in range(len(header))
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(header), rule] + [line(row) for row in rows])


def suite_trend(
    records: Sequence[Dict[str, Any]], suite: str
) -> List[Tuple[str, Dict[str, Any]]]:
    """``(record label, suite metrics)`` for every record carrying the suite."""
    return [
        (record_label(record), record["suites"][suite])
        for record in records
        if suite in record.get("suites", {})
    ]


def render_report(
    records: Sequence[Dict[str, Any]],
    *,
    suite: Optional[str] = None,
) -> str:
    """The trend table over ``records`` (oldest first)."""
    if not records:
        return "(no benchmark history yet — run 'repro bench run')"
    if suite is not None:
        return _render_suite_report(records, suite)
    headlines = _headlines()
    suite_names: List[str] = []
    for record in records:
        for name in record.get("suites", {}):
            if name not in suite_names:
                suite_names.append(name)
    header = ["suite", "headline"] + [record_label(r) for r in records]
    rows = []
    for name in suite_names:
        headline = headlines.get(name, DEFAULT_HEADLINE)
        cells = [name, headline]
        for record in records:
            metrics = record.get("suites", {}).get(name)
            value = metric_at(metrics, headline) if metrics else None
            if value is None and metrics is not None:
                value = metric_at(metrics, DEFAULT_HEADLINE)
            cells.append(_format(value))
        rows.append(cells)
    return _render_table(header, rows)


def _render_suite_report(
    records: Sequence[Dict[str, Any]], suite: str
) -> str:
    trend = suite_trend(records, suite)
    if not trend:
        return f"(no records carry suite {suite!r})"
    metric_names: List[str] = []
    flat: List[Tuple[str, Dict[str, float]]] = []
    for label, metrics in trend:
        scalars = _flatten(metrics)
        flat.append((label, scalars))
        for name in scalars:
            if name not in metric_names:
                metric_names.append(name)
    header = ["metric"] + [label for label, _ in flat]
    rows = [
        [name] + [_format(scalars.get(name)) for _, scalars in flat]
        for name in metric_names
    ]
    return _render_table(header, rows)


def _flatten(
    metrics: Dict[str, Any], prefix: str = ""
) -> Dict[str, Any]:
    """Scalar leaves of a metrics dict, keyed by dotted path."""
    out: Dict[str, Any] = {}
    for key, value in metrics.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, prefix=path + "."))
        elif isinstance(value, (int, float, bool)) or value is None:
            out[path] = value
    return out
