"""The unified benchmark harness: ``repro bench``.

Every perf claim this repository makes — the routing-cache speedup, the
topology build rates, the sweep-backend overheads, each regenerated
paper figure — lives in a ``benchmarks/test_bench_*.py`` module.  This
package is the single entry point that runs them all, records the
trajectory, and gates regressions:

* :mod:`repro.bench.registry` — the ``@bench_suite`` decorator each
  benchmark module registers itself with, plus filesystem discovery.
* :mod:`repro.bench.history` — machine-tagged ``BENCH_HISTORY.jsonl``
  records (host, python, CPU count, git SHA, timestamp, per-suite
  metrics) and the compatibility reader for the legacy ``BENCH_*.json``
  snapshots.
* :mod:`repro.bench.runner` — ``repro bench run``: execute every (or a
  chosen) suite and append exactly one history record.
* :mod:`repro.bench.verify` — ``repro bench verify``: assert per-suite
  floors against the newest record, with machine-class relaxation for
  CI hardware.
* :mod:`repro.bench.report` — ``repro bench report``: the headline
  trend table across the whole recorded trajectory.

The benchmark modules stay runnable under bare pytest; registration is
additive.
"""

from .history import (
    HISTORY_FILENAME,
    append_record,
    legacy_records,
    load_trajectory,
    read_history,
)
from .registry import BenchSuite, bench_suite, discover_suites, get_suite, list_suites
from .report import render_report, suite_trend
from .runner import run_suites
from .verify import FLOORS, Floor, Violation, machine_class_factor, verify_record

__all__ = [
    "BenchSuite",
    "FLOORS",
    "Floor",
    "HISTORY_FILENAME",
    "Violation",
    "append_record",
    "bench_suite",
    "discover_suites",
    "get_suite",
    "legacy_records",
    "list_suites",
    "load_trajectory",
    "machine_class_factor",
    "read_history",
    "render_report",
    "run_suites",
    "suite_trend",
    "verify_record",
]
