"""Suite execution: ``repro bench run``.

Discovers every registered suite, runs each once (smoke or full),
prints a one-line result per suite, and appends exactly one
machine-tagged record to the history file.  A suite that raises —
including a failed shape assertion — marks the whole run failed: no
record is appended, because a partial record would read as "these
suites were fine" when they were never measured.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import ConfigurationError
from .history import append_record, default_history_path, make_record
from .registry import discover_suites, metric_at, suites_matching


def _silent(_message: str) -> None:
    pass


def run_suites(
    names: Sequence[str] = (),
    *,
    smoke: bool = False,
    bench_dir: Optional[str] = None,
    history_path: Optional[str] = None,
    append: bool = True,
    echo: Callable[[str], None] = _silent,
) -> Dict[str, Any]:
    """Run the named suites (all when empty) and append one record.

    Returns the appended record.  Raises :class:`ConfigurationError`
    listing every failed suite if any raised; nothing is appended then.
    """
    discover_suites(bench_dir)
    suites = suites_matching(tuple(names))
    mode = "smoke" if smoke else "full"
    results: Dict[str, Dict[str, Any]] = {}
    failures: List[Tuple[str, BaseException]] = []
    # The whole run executes under a nest-safe telemetry scope so the
    # appended record also says where the run's own time went (the obs
    # suite stashes and restores this registry around its measurements).
    with obs.enabled() as registry:
        for suite in suites:
            echo(f"[bench] {suite.name} ({mode}) ...")
            start = time.perf_counter()
            try:
                with obs.span("bench.suite", suite=suite.name):
                    metrics = suite.run(smoke=smoke)
            except Exception as exc:  # noqa: BLE001 - reported, run fails
                echo(f"[bench] {suite.name} FAILED: {exc!r}")
                echo(traceback.format_exc().rstrip())
                failures.append((suite.name, exc))
                continue
            elapsed = round(time.perf_counter() - start, 4)
            if not isinstance(metrics, dict):
                failures.append(
                    (
                        suite.name,
                        TypeError(
                            f"suite returned {type(metrics).__name__}, "
                            "expected a metrics dict"
                        ),
                    )
                )
                continue
            metrics.setdefault("elapsed_s", elapsed)
            headline = ""
            if suite.headline:
                value = metric_at(metrics, suite.headline)
                if value is not None:
                    headline = f"  {suite.headline}={value:g}" if isinstance(
                        value, (int, float)
                    ) else f"  {suite.headline}={value}"
            echo(f"[bench] {suite.name} ok in {elapsed:.2f}s{headline}")
            results[suite.name] = metrics
    if failures:
        summary = "; ".join(f"{name}: {exc}" for name, exc in failures)
        raise ConfigurationError(
            f"{len(failures)}/{len(suites)} bench suites failed "
            f"(no record appended): {summary}"
        )
    record = make_record(results, smoke=smoke, telemetry=registry.summary())
    if append:
        path = history_path or default_history_path()
        append_record(path, record)
        echo(f"[bench] appended 1 record ({len(results)} suites) to {path}")
    return record
