"""The benchmark trajectory: machine-tagged ``BENCH_HISTORY.jsonl`` records.

One :func:`run <repro.bench.runner.run_suites>` appends exactly one
record — a single JSON line — so the file is a time series of every
benchmark invocation ever made, mergeable across machines and trivially
greppable::

    {"schema": 1, "timestamp": "...", "host": ..., "python": ...,
     "cpu_count": ..., "git_sha": ..., "machine_class": "reference",
     "smoke": false, "suites": {"scheduler": {...}, ...}}

The two pre-harness snapshots (``BENCH_scheduler.json``,
``BENCH_topologies.json``) are absorbed through
:func:`legacy_records`: a compatibility reader that presents them as
synthetic history records (``"legacy": true``, machine fields unknown)
so the trend report shows the full trajectory, not just post-harness
points.
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import platform
import socket
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError

#: Canonical trajectory file name, at the repo root.
HISTORY_FILENAME = "BENCH_HISTORY.jsonl"

#: Environment knob naming the hardware class floors are scaled for.
MACHINE_CLASS_ENV = "REPRO_BENCH_MACHINE_CLASS"

#: The legacy pre-harness snapshot files and the suite each maps to.
LEGACY_SNAPSHOTS = {
    "BENCH_scheduler.json": "scheduler",
    "BENCH_topologies.json": "topologies",
}

RECORD_SCHEMA = 1


def repo_root() -> Path:
    """The checkout root (parent of ``src/``); cwd as a fallback."""
    root = Path(__file__).resolve().parents[3]
    return root if (root / "src").is_dir() else Path.cwd()


def default_history_path() -> str:
    return str(repo_root() / HISTORY_FILENAME)


def git_sha(root: Optional[Path] = None) -> Optional[str]:
    """Short HEAD SHA of the checkout, or None outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root or repo_root()),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def machine_class() -> str:
    """The hardware class verify floors are scaled for (env override)."""
    return os.environ.get(MACHINE_CLASS_ENV, "reference")


def machine_tag() -> Dict[str, Any]:
    """Who/what/when for one benchmark invocation."""
    return {
        "timestamp": _datetime.datetime.now(_datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha(),
        "machine_class": machine_class(),
    }


def make_record(
    suites: Dict[str, Dict[str, Any]],
    *,
    smoke: bool,
    telemetry: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A complete history record for one run's per-suite metrics.

    Args:
        suites: per-suite metrics dicts, keyed by suite name.
        smoke: whether this was a smoke (shrunk-grid) run.
        telemetry: optional :meth:`repro.obs.Telemetry.summary` roll-up
            of the run itself — where the runner's wall time went.
    """
    record: Dict[str, Any] = {"schema": RECORD_SCHEMA}
    record.update(machine_tag())
    record["smoke"] = bool(smoke)
    record["suites"] = suites
    if telemetry is not None:
        record["telemetry"] = telemetry
    return record


def append_record(path: str, record: Dict[str, Any]) -> None:
    """Append one record as one JSON line (creating the file if needed)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True, default=str))
        handle.write("\n")


def read_history(path: str) -> List[Dict[str, Any]]:
    """Every record in the trajectory file, oldest first.

    Blank lines are tolerated (hand edits); a malformed line raises with
    its line number — silent skips would hide lost trajectory points.
    """
    if not os.path.exists(path):
        return []
    records: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{number}: malformed history record: {exc}"
                ) from exc
            if not isinstance(record, dict) or "suites" not in record:
                raise ConfigurationError(
                    f"{path}:{number}: history record has no 'suites' field"
                )
            records.append(record)
    return records


def legacy_records(root: Optional[Path] = None) -> List[Dict[str, Any]]:
    """The pre-harness ``BENCH_*.json`` snapshots as one synthetic record.

    The snapshots carried no machine tag, so the record says so
    explicitly (``legacy: true``, machine fields ``None``) rather than
    inventing one.  Missing snapshot files are simply absent from the
    result — a fresh clone without them reads an empty legacy history.
    """
    root = root or repo_root()
    suites: Dict[str, Dict[str, Any]] = {}
    smoke = False
    for filename, suite in LEGACY_SNAPSHOTS.items():
        snapshot = root / filename
        if not snapshot.exists():
            continue
        try:
            payload = json.loads(snapshot.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ConfigurationError(
                f"{snapshot}: malformed legacy snapshot: {exc}"
            ) from exc
        suites[suite] = payload
        smoke = smoke or any(
            isinstance(entry, dict) and entry.get("smoke")
            for entry in payload.values()
        )
    if not suites:
        return []
    return [
        {
            "schema": RECORD_SCHEMA,
            "legacy": True,
            "timestamp": None,
            "host": None,
            "platform": None,
            "python": None,
            "cpu_count": None,
            "git_sha": None,
            "machine_class": "reference",
            "smoke": smoke,
            "suites": suites,
        }
    ]


def load_trajectory(
    path: Optional[str] = None, *, include_legacy: bool = True
) -> List[Dict[str, Any]]:
    """Legacy snapshot record(s) followed by the JSONL history, oldest first."""
    path = path or default_history_path()
    records: List[Dict[str, Any]] = []
    if include_legacy:
        records.extend(legacy_records(Path(path).resolve().parent))
    records.extend(read_history(path))
    return records
