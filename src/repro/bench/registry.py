"""Suite registration and discovery for the ``repro bench`` harness.

A benchmark module registers itself by decorating one plain function::

    from repro.bench import bench_suite

    @bench_suite("scheduler", headline="scale_free_200.speedup")
    def suite(smoke: bool = False) -> dict:
        ...
        return {"scale_free_200": {...}, "elapsed_s": 1.23}

The function takes one keyword — ``smoke`` — and returns a JSON-safe
metrics mapping.  It must also *assert* the benchmark's qualitative
shape (the same assertions the module's pytest tests check), so a suite
run is a correctness check, not just a stopwatch.  The pytest tests
keep working untouched: they call the same function under the
``benchmark`` fixture, so ``pytest benchmarks`` and ``repro bench run``
exercise identical code.

Discovery imports every ``benchmarks/test_bench_*.py`` module found
under the benchmarks directory (repo checkout layout: ``benchmarks/``
beside ``src/``), which fills the registry as a side effect of each
module's decorator running at import time.
"""

from __future__ import annotations

import importlib
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError

#: A suite body: ``fn(smoke=...) -> metrics dict``.
SuiteFn = Callable[..., Dict[str, Any]]

#: name -> registered suite, in registration order.
_SUITES: Dict[str, "BenchSuite"] = {}


@dataclass(frozen=True)
class BenchSuite:
    """One registered benchmark suite.

    Attributes:
        name: short CLI name (``repro bench run --suite NAME``).
        fn: the body; called as ``fn(smoke=smoke)``.
        description: one line for ``repro bench list`` (defaults to the
            first line of the body's docstring).
        headline: dotted path into the returned metrics naming the one
            number the trend report tracks for this suite.
    """

    name: str
    fn: SuiteFn = field(repr=False)
    description: str = ""
    headline: Optional[str] = None

    def run(self, *, smoke: bool = False) -> Dict[str, Any]:
        return self.fn(smoke=smoke)


def bench_suite(
    name: str,
    *,
    headline: Optional[str] = None,
    description: Optional[str] = None,
) -> Callable[[SuiteFn], SuiteFn]:
    """Register ``fn`` as benchmark suite ``name``; returns ``fn`` unchanged."""

    def decorate(fn: SuiteFn) -> SuiteFn:
        doc = description
        if doc is None:
            doc = (fn.__doc__ or "").strip().splitlines()[0:1]
            doc = doc[0] if doc else ""
        _SUITES[name] = BenchSuite(
            name=name, fn=fn, description=doc, headline=headline
        )
        return fn

    return decorate


def clear_registry() -> None:
    """Forget every registered suite (test isolation helper)."""
    _SUITES.clear()


def default_benchmarks_dir() -> Optional[Path]:
    """The repo's ``benchmarks/`` directory, if this is a checkout.

    Resolution order: the directory next to this package's repo root
    (``src/repro/bench`` -> repo root), then ``$PWD/benchmarks``.
    """
    candidates = [
        Path(__file__).resolve().parents[3] / "benchmarks",
        Path.cwd() / "benchmarks",
    ]
    for candidate in candidates:
        if candidate.is_dir() and list(candidate.glob("test_bench_*.py")):
            return candidate
    return None


def discover_suites(bench_dir: Optional[str] = None) -> List[BenchSuite]:
    """Import every ``test_bench_*.py`` module and return the registry.

    Importing a benchmark module runs its ``@bench_suite`` decorators,
    which is what fills the registry; modules that register nothing are
    reported so a forgotten decorator is loud, not silent.
    """
    directory = Path(bench_dir) if bench_dir else default_benchmarks_dir()
    if directory is None or not directory.is_dir():
        raise ConfigurationError(
            "cannot find a benchmarks/ directory; run from the repo root "
            "or pass --bench-dir"
        )
    directory = directory.resolve()
    parent = str(directory.parent)
    if parent not in sys.path:
        sys.path.insert(0, parent)
    package = directory.name
    unregistered: List[str] = []
    for module_path in sorted(directory.glob("test_bench_*.py")):
        before = set(_SUITES)
        importlib.import_module(f"{package}.{module_path.stem}")
        if set(_SUITES) == before:
            unregistered.append(module_path.name)
    if unregistered:
        raise ConfigurationError(
            "benchmark modules without a @bench_suite registration: "
            + ", ".join(unregistered)
        )
    return list_suites()


def list_suites() -> List[BenchSuite]:
    """Registered suites, in registration (module import) order."""
    return list(_SUITES.values())


def get_suite(name: str) -> BenchSuite:
    try:
        return _SUITES[name]
    except KeyError:
        known = ", ".join(sorted(_SUITES)) or "(none discovered)"
        raise ConfigurationError(
            f"unknown bench suite {name!r}; known: {known}"
        ) from None


def metric_at(metrics: Dict[str, Any], dotted: str) -> Any:
    """Resolve a dotted path (``scale_free_200.speedup``) in a metrics dict."""
    node: Any = metrics
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def suites_matching(names: Tuple[str, ...]) -> List[BenchSuite]:
    """The named suites (every name validated), or all when empty."""
    if not names:
        return list_suites()
    return [get_suite(name) for name in names]
