"""Per-suite floors: ``repro bench verify``.

A *floor* pins one metric of one suite's history record, so a perf or
quality regression fails loudly instead of landing as a quietly smaller
number in ``BENCH_HISTORY.jsonl``.  Two kinds:

* **Shape floors** (``timing=False``) — identity checks, row counts,
  model-quality bands.  Deterministic, so they hold on every record,
  smoke runs included.
* **Timing floors** (``timing=True``) — wall-clock-derived numbers
  (speedups, build rates).  Checked only on full (non-smoke) records,
  and scaled by the machine class: shared CI runners are slower and
  noisier than the reference machine the baselines in ``BASELINES.md``
  were measured on, so CI asserts a relaxed fraction of each floor
  (``REPRO_BENCH_MACHINE_CLASS=ci``) rather than flaking.

The starting floors encode the recorded baselines: the 6.38x
scheduler-cache speedup (floored at 3x, its pre-harness assertion) and
the ``BENCH_topologies.json`` build rates (floored at roughly an order
of magnitude below the recorded reference numbers, so only a real
regression — not jitter — trips them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError
from .history import machine_class
from .registry import metric_at

#: Hardware class -> fraction of each timing floor that must still hold.
MACHINE_CLASS_FACTORS = {
    "reference": 1.0,
    "workstation": 1.0,
    "laptop": 0.5,
    "ci": 0.2,
}


@dataclass(frozen=True)
class Floor:
    """One pinned metric: ``record.suites[suite].<metric> op limit``."""

    suite: str
    metric: str
    limit: float
    op: str = ">="
    timing: bool = False
    doc: str = ""

    def effective_limit(self, factor: float) -> float:
        """The limit after machine-class relaxation (timing floors only)."""
        if not self.timing or factor == 1.0:
            return self.limit
        return self.limit * factor if self.op == ">=" else self.limit / factor

    def describe(self) -> str:
        return f"{self.suite}.{self.metric} {self.op} {self.limit:g}"


@dataclass(frozen=True)
class Violation:
    floor: Floor
    value: Optional[float]
    effective: float
    reason: str


#: The tracked floors.  Shape floors first, then timing floors.
FLOORS: List[Floor] = [
    # -- shape: deterministic, asserted on every record including smoke --
    Floor(
        "scheduler", "scale_free_200.identical", 1,
        doc="cached and uncached schedulers byte-identical at N=200",
    ),
    Floor(
        "scheduler", "scale_free_50.identical", 1,
        doc="cached and uncached schedulers byte-identical at N=50",
    ),
    Floor(
        "sweep", "identical", 1,
        doc="pool and socket backends byte-identical to serial",
    ),
    Floor(
        "topologies", "families", 11,
        doc="registry still exposes every topology family",
    ),
    Floor(
        "topologies", "deterministic", 1,
        doc="same-params topology builds are byte-identical",
    ),
    Floor(
        "fig1", "bandwidth_saving_gbps", 1e-9,
        doc="flexible consumes less bandwidth than fixed on fig1",
    ),
    Floor(
        "fig3a", "latency_saving_pct", 5.0,
        doc="fig3a latency saving at 15 locals stays in the paper band",
    ),
    Floor(
        "fig3a", "latency_saving_pct", 60.0, op="<=",
        doc="fig3a saving not suspiciously above the paper band",
    ),
    Floor(
        "fig3b", "bandwidth_gap_widens", 1,
        doc="fig3b fixed-vs-flexible bandwidth gap widens with locals",
    ),
    Floor(
        "simcheck", "max_gap_percent", 10.0, op="<=",
        doc="analytic model within 10% of event-driven execution",
    ),
    Floor(
        "optgap", "worst_mean_ratio", 1.10, op="<=",
        doc="MST heuristic mean optimality gap stays under 10%",
    ),
    Floor(
        "campaign", "flexible_blocked", 0.0, op="<=",
        doc="flexible scheduler admits the whole campaign mix",
    ),
    Floor(
        "resilience", "min_availability", 1e-9,
        doc="fault-injected campaigns still make progress",
    ),
    Floor(
        "obs", "identical", 1,
        doc="result rows byte-identical with telemetry on and off",
    ),
    Floor(
        "obs", "collect_identical", 1,
        doc="result rows byte-identical with trace collection on and off",
    ),
    Floor(
        "csr", "scale_free_200.identical", 1,
        doc="CSR and object kernels byte-identical at N=200",
    ),
    Floor(
        "csr", "scale_free_1k.hub_utilisation", 1.001, op="<=",
        doc="hub edges never oversubscribed under held schedules",
    ),
    Floor(
        "csr", "scale_free_5k.scheduled", 3,
        doc="the N=5000 scale-free regime builds and schedules",
    ),
    Floor(
        "traces", "identical", 1,
        doc="trace+SRLG replay byte-identical between serial and pool",
    ),
    Floor(
        "traces", "srlg_cuts", 1,
        doc="the pinned replay actually exercises correlated cuts",
    ),
    Floor(
        "traces", "deadline_rows", 1,
        doc="inter-DC sweeps carry the deadline-miss columns",
    ),
    # -- timing: full records only, relaxed by machine class ------------
    Floor(
        "obs", "off_overhead_pct", 2.0, op="<=", timing=True,
        doc="telemetry-off guard overhead under 2% of sweep wall time",
    ),
    Floor(
        "obs", "collect_overhead_pct", 5.0, op="<=", timing=True,
        doc="distributed trace collection overhead under 5% of sweep wall",
    ),
    Floor(
        "scheduler", "scale_free_200.speedup", 3.0, timing=True,
        doc="routing-cache schedule speedup at N=200 (baseline 6.38x)",
    ),
    Floor(
        "csr", "scale_free_200.speedup", 5.0, timing=True,
        doc="CSR kernel speedup over the cached object path at N=200",
    ),
    Floor(
        "topologies", "clos.builds_per_s", 100.0, timing=True,
        doc="Clos build rate (reference baseline 786/s)",
    ),
    Floor(
        "topologies", "nsfnet.builds_per_s", 1000.0, timing=True,
        doc="NSFNet build rate (reference baseline 8516/s)",
    ),
    Floor(
        "topologies", "scale-free.builds_per_s", 40.0, timing=True,
        doc="scale-free build rate (reference baseline 348/s)",
    ),
    Floor(
        "topologies", "waxman.builds_per_s", 25.0, timing=True,
        doc="Waxman build rate (reference baseline 221/s)",
    ),
    Floor(
        "traces", "replay_runs_per_s", 2.0, timing=True,
        doc="trace+SRLG campaign replay rate (reference baseline 16/s)",
    ),
]


def machine_class_factor(name: Optional[str] = None) -> float:
    """The relaxation factor for a machine class (env default)."""
    name = name or machine_class()
    try:
        return MACHINE_CLASS_FACTORS[name]
    except KeyError:
        known = ", ".join(sorted(MACHINE_CLASS_FACTORS))
        raise ConfigurationError(
            f"unknown machine class {name!r}; known: {known}"
        ) from None


def _as_number(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


def verify_record(
    record: Dict[str, Any], *, machine_class: Optional[str] = None
) -> List[Violation]:
    """Every floor violation in one history record (empty = pass).

    Floors for suites absent from the record are skipped — a
    ``--suite``-restricted run records only what it ran — but a floored
    metric *missing inside a present suite* is a violation: losing the
    metric is how a regression hides.
    """
    factor = machine_class_factor(machine_class)
    smoke = bool(record.get("smoke"))
    suites: Dict[str, Any] = record.get("suites", {})
    violations: List[Violation] = []
    for floor in FLOORS:
        metrics = suites.get(floor.suite)
        if metrics is None:
            continue
        if floor.timing and smoke:
            continue
        effective = floor.effective_limit(factor)
        value = _as_number(metric_at(metrics, floor.metric))
        if value is None:
            violations.append(
                Violation(
                    floor, None, effective,
                    f"metric {floor.metric!r} missing from suite "
                    f"{floor.suite!r}",
                )
            )
            continue
        passed = value >= effective if floor.op == ">=" else value <= effective
        if not passed:
            violations.append(
                Violation(
                    floor, value, effective,
                    f"{floor.suite}.{floor.metric} = {value:g} violates "
                    f"{floor.op} {effective:g}"
                    + (
                        f" (base {floor.limit:g}, machine-class x{factor:g})"
                        if floor.timing and factor != 1.0
                        else ""
                    ),
                )
            )
    return violations
