"""Transport protocols: packetisation, TCP, RDMA, path transfer times.

Open challenge #2 of the paper: TCP/IP burns CPU and header bytes, hurting
communication/training efficiency; RDMA communicates buffer-to-buffer but
degrades over long distances.  This package models both protocols at the
fidelity scheduling needs — *effective throughput* and *endpoint CPU time*
as functions of rate, RTT, loss, and message size — and provides
:class:`~repro.transport.channel.Channel` to compute end-to-end transfer
times over a routed path.
"""

from .channel import Channel, TransferEstimate
from .packet import Packetiser
from .protocols import RdmaTransport, TcpTransport, Transport

__all__ = [
    "Channel",
    "TransferEstimate",
    "Packetiser",
    "Transport",
    "TcpTransport",
    "RdmaTransport",
]
