"""End-to-end transfer estimation over a routed path.

:class:`Channel` marries a routed path (node sequence over the live
network) with a :class:`~repro.transport.protocols.Transport` model and an
allocated rate, and answers the single question schedulers care about:
*how long does moving this payload take, and how much endpoint CPU does it
burn?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigurationError
from ..network.graph import Network
from ..network.paths import path_latency_ms
from .protocols import TcpTransport, Transport


@dataclass(frozen=True)
class TransferEstimate:
    """Outcome of a path-level transfer computation.

    Attributes:
        total_ms: propagation + protocol transfer time.
        propagation_ms: one-way fibre latency along the path.
        transfer_ms: serialisation/protocol time (incl. handshakes, loss).
        endpoint_cpu_ms: CPU consumed at the two endpoints.
        effective_rate_gbps: goodput achieved.
    """

    total_ms: float
    propagation_ms: float
    transfer_ms: float
    endpoint_cpu_ms: float
    effective_rate_gbps: float


class Channel:
    """A unidirectional transfer lane over a routed path.

    Args:
        network: topology providing per-hop latencies.
        path: node sequence from sender to receiver.
        rate_gbps: rate allocated to this transfer on every hop.
        transport: protocol model (defaults to kernel TCP).
    """

    def __init__(
        self,
        network: Network,
        path: Sequence[str],
        rate_gbps: float,
        transport: "Transport | None" = None,
    ) -> None:
        if len(path) < 1:
            raise ConfigurationError("path must contain at least one node")
        if rate_gbps <= 0:
            raise ConfigurationError(f"rate must be > 0 Gbps, got {rate_gbps}")
        self._network = network
        self._path: Tuple[str, ...] = tuple(path)
        self._rate = rate_gbps
        self._transport = transport if transport is not None else TcpTransport()

    @property
    def path(self) -> Tuple[str, ...]:
        return self._path

    @property
    def rate_gbps(self) -> float:
        return self._rate

    @property
    def transport(self) -> Transport:
        return self._transport

    def propagation_ms(self) -> float:
        """One-way fibre latency along the path."""
        return path_latency_ms(self._network, self._path)

    def rtt_ms(self) -> float:
        """Round-trip propagation latency."""
        return 2.0 * self.propagation_ms()

    def estimate(self, size_mb: float) -> TransferEstimate:
        """Estimate moving ``size_mb`` megabits of payload over the path."""
        propagation = self.propagation_ms()
        rtt = 2.0 * propagation
        transfer = self._transport.transfer_ms(size_mb, self._rate, rtt)
        cpu = self._transport.endpoint_cpu_ms(size_mb)
        return TransferEstimate(
            total_ms=propagation + transfer,
            propagation_ms=propagation,
            transfer_ms=transfer,
            endpoint_cpu_ms=cpu,
            effective_rate_gbps=self._transport.effective_rate_gbps(self._rate, rtt),
        )
