"""Protocol throughput/CPU models: TCP/IP versus RDMA.

The models capture exactly the effects the paper's challenge #2 names:

* **TCP** — per-packet header bytes shrink goodput; per-packet kernel
  processing consumes endpoint CPU (stealing it from training); loss
  triggers retransmission of the lost fraction; throughput is additionally
  capped by the congestion window over the RTT.
* **RDMA** — negligible headers and near-zero CPU (buffer-to-buffer), but
  go-back-N loss recovery makes every loss retransmit a full
  bandwidth-delay product, so performance *degrades with distance* when
  loss is non-zero, and the receive-buffer cap also binds at long RTTs.
  Both long-distance effects are the ones [Ichikawa+ 2021] measures.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..errors import ConfigurationError, TransportError
from ..units import BYTES_PER_MEGABIT
from .packet import Packetiser


class Transport(abc.ABC):
    """Common interface of the protocol models."""

    #: human-readable protocol name for reports.
    name: str = "transport"

    @abc.abstractmethod
    def effective_rate_gbps(self, raw_rate_gbps: float, rtt_ms: float) -> float:
        """Achievable goodput given the allocated rate and path RTT."""

    @abc.abstractmethod
    def transfer_ms(self, size_mb: float, raw_rate_gbps: float, rtt_ms: float) -> float:
        """Time to deliver ``size_mb`` of payload (excl. propagation)."""

    @abc.abstractmethod
    def endpoint_cpu_ms(self, size_mb: float) -> float:
        """Endpoint CPU time consumed to move ``size_mb`` of payload."""

    @staticmethod
    def _validate(size_mb: float, raw_rate_gbps: float, rtt_ms: float) -> None:
        if size_mb < 0:
            raise TransportError(f"size must be >= 0 Mb, got {size_mb}")
        if raw_rate_gbps <= 0:
            raise TransportError(f"rate must be > 0 Gbps, got {raw_rate_gbps}")
        if rtt_ms < 0:
            raise TransportError(f"rtt must be >= 0 ms, got {rtt_ms}")


@dataclass
class TcpTransport(Transport):
    """Kernel TCP/IP over Ethernet.

    Args:
        mtu_bytes / header_bytes: packetisation parameters.
        loss_rate: independent per-packet loss probability.
        window_mb: congestion/receive window in megabits; caps goodput at
            ``window / RTT``.
        cpu_us_per_packet: endpoint kernel time per packet (both ends
            combined); the challenge-#2 "TCP consumes a lot of CPU".
    """

    mtu_bytes: int = 1500
    header_bytes: int = 40
    loss_rate: float = 1e-4
    window_mb: float = 64.0
    cpu_us_per_packet: float = 2.0
    name: str = "tcp"

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.window_mb <= 0:
            raise ConfigurationError(
                f"window must be > 0 Mb, got {self.window_mb}"
            )
        if self.cpu_us_per_packet < 0:
            raise ConfigurationError(
                f"cpu_us_per_packet must be >= 0, got {self.cpu_us_per_packet}"
            )
        self._packetiser = Packetiser(self.mtu_bytes, self.header_bytes)

    @property
    def packetiser(self) -> Packetiser:
        return self._packetiser

    def effective_rate_gbps(self, raw_rate_gbps: float, rtt_ms: float) -> float:
        self._validate(0.0, raw_rate_gbps, rtt_ms)
        goodput = raw_rate_gbps * self._packetiser.goodput_ratio
        # Selective-repeat style recovery: only lost packets resend.
        goodput *= 1.0 - self.loss_rate
        if rtt_ms > 0:
            window_limited = self.window_mb / rtt_ms  # Mb / ms == Gbps
            goodput = min(goodput, window_limited)
        return goodput

    def transfer_ms(self, size_mb: float, raw_rate_gbps: float, rtt_ms: float) -> float:
        self._validate(size_mb, raw_rate_gbps, rtt_ms)
        if size_mb == 0:
            return 0.0
        rate = self.effective_rate_gbps(raw_rate_gbps, rtt_ms)
        handshake_ms = 1.5 * rtt_ms  # SYN, SYN-ACK, ACK amortised as 1.5 RTT
        return handshake_ms + size_mb / rate

    def endpoint_cpu_ms(self, size_mb: float) -> float:
        packets = self._packetiser.packets_for(size_mb)
        expected = packets * (1.0 + self.loss_rate)
        return expected * self.cpu_us_per_packet / 1000.0


@dataclass
class RdmaTransport(Transport):
    """RDMA (RoCEv2-style) buffer-to-buffer transfer.

    Args:
        header_bytes: framing per 4096-byte message chunk.
        loss_rate: per-packet loss probability; PFC-protected fabrics are
            near zero, long-haul links are not.
        buffer_mb: receive-buffer credit in megabits; goodput is capped at
            ``buffer / RTT`` once the bandwidth-delay product exceeds it —
            the long-distance degradation of challenge #2.
        cpu_us_per_megabit: endpoint CPU per megabit (orders of magnitude
            below TCP's per-packet cost).
        go_back_n: when True every loss retransmits the in-flight window
            (hardware go-back-N), multiplying the penalty by the BDP.
    """

    header_bytes: int = 58
    chunk_bytes: int = 4096
    loss_rate: float = 1e-6
    buffer_mb: float = 16.0
    cpu_us_per_megabit: float = 0.05
    go_back_n: bool = True
    name: str = "rdma"

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.buffer_mb <= 0:
            raise ConfigurationError(
                f"buffer must be > 0 Mb, got {self.buffer_mb}"
            )
        if self.cpu_us_per_megabit < 0:
            raise ConfigurationError(
                f"cpu_us_per_megabit must be >= 0, got {self.cpu_us_per_megabit}"
            )
        self._packetiser = Packetiser(self.chunk_bytes, self.header_bytes)

    @property
    def packetiser(self) -> Packetiser:
        return self._packetiser

    def effective_rate_gbps(self, raw_rate_gbps: float, rtt_ms: float) -> float:
        self._validate(0.0, raw_rate_gbps, rtt_ms)
        goodput = raw_rate_gbps * self._packetiser.goodput_ratio
        if self.loss_rate > 0:
            if self.go_back_n and rtt_ms > 0:
                # Each lost packet discards the whole in-flight window:
                # the wasted work per loss scales with packets-in-flight.
                bdp_mb = min(self.buffer_mb, raw_rate_gbps * rtt_ms)
                packets_in_flight = max(
                    1.0, bdp_mb / (self._packetiser.payload_bytes / BYTES_PER_MEGABIT)
                )
                waste = self.loss_rate * packets_in_flight
                goodput /= 1.0 + waste
            else:
                goodput *= 1.0 - self.loss_rate
        if rtt_ms > 0:
            goodput = min(goodput, self.buffer_mb / rtt_ms)
        return goodput

    def transfer_ms(self, size_mb: float, raw_rate_gbps: float, rtt_ms: float) -> float:
        self._validate(size_mb, raw_rate_gbps, rtt_ms)
        if size_mb == 0:
            return 0.0
        rate = self.effective_rate_gbps(raw_rate_gbps, rtt_ms)
        setup_ms = 0.5 * rtt_ms  # queue-pair already connected; one credit RTT
        return setup_ms + size_mb / rate

    def endpoint_cpu_ms(self, size_mb: float) -> float:
        return size_mb * self.cpu_us_per_megabit / 1000.0
