"""Packetisation arithmetic shared by the protocol models."""

from __future__ import annotations

import math

from ..errors import ConfigurationError, TransportError
from ..units import BYTES_PER_MEGABIT


class Packetiser:
    """Split a payload into MTU-sized packets and account header bytes.

    Args:
        mtu_bytes: maximum transmission unit on the wire.
        header_bytes: per-packet header+trailer overhead (e.g. 40 for
            IPv4+TCP without options, 58 for RoCEv2 framing).
    """

    def __init__(self, mtu_bytes: int = 1500, header_bytes: int = 40) -> None:
        if mtu_bytes <= 0:
            raise ConfigurationError(f"mtu must be > 0 bytes, got {mtu_bytes}")
        if header_bytes < 0:
            raise ConfigurationError(
                f"header_bytes must be >= 0, got {header_bytes}"
            )
        if header_bytes >= mtu_bytes:
            raise ConfigurationError(
                f"headers ({header_bytes} B) must be smaller than the MTU "
                f"({mtu_bytes} B)"
            )
        self.mtu_bytes = mtu_bytes
        self.header_bytes = header_bytes

    @property
    def payload_bytes(self) -> int:
        """Payload carried by one full packet."""
        return self.mtu_bytes - self.header_bytes

    @property
    def goodput_ratio(self) -> float:
        """Fraction of wire bits that are payload."""
        return self.payload_bytes / self.mtu_bytes

    def packets_for(self, size_mb: float) -> int:
        """Number of packets to carry ``size_mb`` megabits of payload."""
        if size_mb < 0:
            raise TransportError(f"size must be >= 0 Mb, got {size_mb}")
        payload_bytes = size_mb * BYTES_PER_MEGABIT
        return int(math.ceil(payload_bytes / self.payload_bytes)) if payload_bytes else 0

    def wire_megabits(self, size_mb: float) -> float:
        """Megabits actually serialised (payload + headers)."""
        packets = self.packets_for(size_mb)
        header_mb = packets * self.header_bytes / BYTES_PER_MEGABIT
        return size_mb + header_mb
