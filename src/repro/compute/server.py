"""Servers: multi-resource capacity with container bookkeeping."""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError, PlacementError
from .container import Container, ResourceDemand


class Server:
    """A compute host attached to a network node.

    Args:
        name: unique server identifier.
        node: name of the network node the server hangs off.
        cpu_cores: CPU capacity.
        gpu_gflops: aggregate accelerator speed (drives training time).
        memory_gb: memory capacity.

    The server admits a container only when every resource dimension fits;
    the invariant ``used <= capacity`` holds per dimension at all times.
    """

    def __init__(
        self,
        name: str,
        node: str,
        *,
        cpu_cores: float = 32.0,
        gpu_gflops: float = 10_000.0,
        memory_gb: float = 128.0,
    ) -> None:
        for label, value in (
            ("cpu_cores", cpu_cores),
            ("gpu_gflops", gpu_gflops),
            ("memory_gb", memory_gb),
        ):
            if value <= 0:
                raise ConfigurationError(f"{label} must be > 0, got {value}")
        self.name = name
        self.node = node
        self.cpu_cores = float(cpu_cores)
        self.gpu_gflops = float(gpu_gflops)
        self.memory_gb = float(memory_gb)
        self._containers: Dict[str, Container] = {}

    # ------------------------------------------------------------------
    @property
    def containers(self) -> List[Container]:
        """Hosted containers in placement order."""
        return list(self._containers.values())

    def _used(self) -> ResourceDemand:
        cpu = sum(c.demand.cpu_cores for c in self._containers.values())
        gpu = sum(c.demand.gpu_gflops for c in self._containers.values())
        mem = sum(c.demand.memory_gb for c in self._containers.values())
        return ResourceDemand(cpu_cores=cpu, gpu_gflops=gpu, memory_gb=mem)

    @property
    def used(self) -> ResourceDemand:
        """Summed demand of hosted containers."""
        return self._used()

    @property
    def free(self) -> ResourceDemand:
        """Per-dimension spare capacity."""
        used = self._used()
        return ResourceDemand(
            cpu_cores=self.cpu_cores - used.cpu_cores,
            gpu_gflops=self.gpu_gflops - used.gpu_gflops,
            memory_gb=self.memory_gb - used.memory_gb,
        )

    def fits(self, demand: ResourceDemand) -> bool:
        """Whether ``demand`` fits in the current spare capacity."""
        free = self.free
        return (
            demand.cpu_cores <= free.cpu_cores + 1e-9
            and demand.gpu_gflops <= free.gpu_gflops + 1e-9
            and demand.memory_gb <= free.memory_gb + 1e-9
        )

    def load_fraction(self) -> float:
        """Max per-dimension utilisation — the binding constraint."""
        used = self._used()
        return max(
            used.cpu_cores / self.cpu_cores,
            used.gpu_gflops / self.gpu_gflops,
            used.memory_gb / self.memory_gb,
        )

    def place(self, container: Container) -> None:
        """Host a container.

        Raises:
            PlacementError: if a dimension would overflow or the id exists.
        """
        if container.container_id in self._containers:
            raise PlacementError(
                f"container {container.container_id!r} already on {self.name!r}"
            )
        if not self.fits(container.demand):
            raise PlacementError(
                f"container {container.container_id!r} does not fit on "
                f"{self.name!r} (free: {self.free})"
            )
        container.server = self.name
        self._containers[container.container_id] = container

    def evict(self, container_id: str) -> Container:
        """Remove a container and return it.

        Raises:
            PlacementError: if the container is not hosted here.
        """
        try:
            container = self._containers.pop(container_id)
        except KeyError:
            raise PlacementError(
                f"container {container_id!r} not on {self.name!r}"
            ) from None
        container.server = None
        return container

    def effective_gflops(self, container_id: str) -> float:
        """Accelerator speed available to one container (its reservation)."""
        container = self._containers.get(container_id)
        if container is None:
            raise PlacementError(
                f"container {container_id!r} not on {self.name!r}"
            )
        return container.demand.gpu_gflops

    def __repr__(self) -> str:  # pragma: no cover
        return f"Server({self.name!r} @ {self.node!r}, {len(self._containers)} containers)"
