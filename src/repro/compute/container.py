"""Containers: the unit of model placement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ResourceDemand:
    """A multi-dimensional resource request (or usage report)."""

    cpu_cores: float = 1.0
    gpu_gflops: float = 1000.0
    memory_gb: float = 4.0

    def __post_init__(self) -> None:
        for label in ("cpu_cores", "gpu_gflops", "memory_gb"):
            if getattr(self, label) < 0:
                raise ConfigurationError(
                    f"{label} must be >= 0, got {getattr(self, label)}"
                )

    def scaled(self, factor: float) -> "ResourceDemand":
        """A demand multiplied by ``factor`` in every dimension."""
        if factor < 0:
            raise ConfigurationError(f"factor must be >= 0, got {factor}")
        return ResourceDemand(
            cpu_cores=self.cpu_cores * factor,
            gpu_gflops=self.gpu_gflops * factor,
            memory_gb=self.memory_gb * factor,
        )


@dataclass
class Container:
    """A docker-style container hosting one model replica.

    Attributes:
        container_id: unique identifier (usually ``{task}-{role}``).
        demand: resources the container reserves while placed.
        role: free-form label ("global", "local-3", "aggregator"...).
        server: name of the hosting server (set on placement).
    """

    container_id: str
    demand: ResourceDemand = field(default_factory=ResourceDemand)
    role: str = ""
    server: Optional[str] = None

    @property
    def is_placed(self) -> bool:
        return self.server is not None
