"""Compute substrate: servers, containers, placement policies, manager.

The paper's testbed runs AI models in docker containers on Linux servers
managed by a *computing manager*.  This package reproduces the resource
side of that: :class:`~repro.compute.server.Server` tracks CPU/GPU/memory
capacity, :class:`~repro.compute.container.Container` is the unit of
placement, :mod:`~repro.compute.placement` provides first-fit (the
baseline's "FF") and alternatives, and
:class:`~repro.compute.manager.ComputingManager` is the control-plane
component the orchestrator talks to.
"""

from .container import Container, ResourceDemand
from .manager import ComputingManager
from .placement import (
    PlacementPolicy,
    best_fit,
    first_fit,
    least_loaded,
    worst_fit,
)
from .server import Server

__all__ = [
    "Container",
    "ResourceDemand",
    "ComputingManager",
    "PlacementPolicy",
    "first_fit",
    "best_fit",
    "worst_fit",
    "least_loaded",
    "Server",
]
