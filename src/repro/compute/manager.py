"""The computing manager: the control-plane view of all servers.

The orchestrator (paper Fig. 2) talks to a *computing manager* to create
and destroy the containers hosting global/local models.  This class keeps
the server inventory, applies a placement policy, and answers capability
queries ("which network nodes currently have spare GPU?") that the
schedulers use when choosing aggregation points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError, PlacementError
from .container import Container, ResourceDemand
from .placement import PlacementPolicy, first_fit
from .server import Server


class ComputingManager:
    """Inventory of servers plus placement/teardown operations.

    Args:
        policy: placement policy used by :meth:`deploy`.
    """

    def __init__(self, policy: PlacementPolicy = first_fit) -> None:
        self._servers: Dict[str, Server] = {}
        self._policy = policy
        self._containers: Dict[str, Server] = {}

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def register(self, server: Server) -> None:
        """Add a server to the inventory.

        Raises:
            ConfigurationError: on duplicate server names.
        """
        if server.name in self._servers:
            raise ConfigurationError(f"duplicate server {server.name!r}")
        self._servers[server.name] = server

    def server(self, name: str) -> Server:
        try:
            return self._servers[name]
        except KeyError:
            raise ConfigurationError(f"unknown server {name!r}") from None

    @property
    def servers(self) -> List[Server]:
        """All servers in registration order."""
        return list(self._servers.values())

    def servers_at(self, node: str) -> List[Server]:
        """Servers attached to a given network node."""
        return [s for s in self._servers.values() if s.node == node]

    def nodes_with_capacity(self, demand: ResourceDemand) -> List[str]:
        """Network nodes with at least one server fitting ``demand``."""
        nodes: List[str] = []
        for server in self._servers.values():
            if server.fits(demand) and server.node not in nodes:
                nodes.append(server.node)
        return nodes

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        container: Container,
        *,
        node: Optional[str] = None,
        candidates: Optional[Sequence[str]] = None,
    ) -> Server:
        """Place a container using the configured policy.

        Args:
            container: the container to host.
            node: restrict placement to servers at this network node.
            candidates: restrict placement to these server names (ordered).

        Returns:
            The chosen server.

        Raises:
            PlacementError: when nothing fits.
        """
        if node is not None and candidates is not None:
            raise ConfigurationError("pass either node or candidates, not both")
        if node is not None:
            pool: Sequence[Server] = self.servers_at(node)
            if not pool:
                raise PlacementError(f"no servers at node {node!r}")
        elif candidates is not None:
            pool = [self.server(name) for name in candidates]
        else:
            pool = self.servers
        chosen = self._policy(pool, container.demand)
        chosen.place(container)
        self._containers[container.container_id] = chosen
        return chosen

    def destroy(self, container_id: str) -> Container:
        """Evict a container wherever it runs.

        Raises:
            PlacementError: for unknown container ids.
        """
        host = self._containers.pop(container_id, None)
        if host is None:
            raise PlacementError(f"unknown container {container_id!r}")
        return host.evict(container_id)

    def host_of(self, container_id: str) -> Server:
        """The server hosting a container."""
        host = self._containers.get(container_id)
        if host is None:
            raise PlacementError(f"unknown container {container_id!r}")
        return host

    def container_gflops(self, container_id: str) -> float:
        """Accelerator rate reserved by a placed container."""
        return self.host_of(container_id).effective_gflops(container_id)

    @property
    def total_containers(self) -> int:
        return len(self._containers)
