"""Container placement policies.

Each policy takes the candidate servers (in a deterministic order) and a
demand, and returns the chosen :class:`~repro.compute.server.Server`.
``first_fit`` is the baseline of the paper ("first fit" in SPFF); the
alternatives exist for ablations and for the flexible scheduler's
orchestrator, which may prefer spreading load.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..errors import PlacementError
from .container import ResourceDemand
from .server import Server

#: Signature every placement policy implements.
PlacementPolicy = Callable[[Sequence[Server], ResourceDemand], Server]


def _feasible(servers: Sequence[Server], demand: ResourceDemand) -> List[Server]:
    fitting = [s for s in servers if s.fits(demand)]
    if not fitting:
        raise PlacementError(
            f"no server fits demand {demand} among {len(servers)} candidates"
        )
    return fitting


def first_fit(servers: Sequence[Server], demand: ResourceDemand) -> Server:
    """The first server (in given order) with room — the SPFF baseline."""
    return _feasible(servers, demand)[0]


def best_fit(servers: Sequence[Server], demand: ResourceDemand) -> Server:
    """The feasible server left with the *least* slack (tight packing)."""
    return min(
        _feasible(servers, demand),
        key=lambda s: (s.free.gpu_gflops - demand.gpu_gflops, s.name),
    )


def worst_fit(servers: Sequence[Server], demand: ResourceDemand) -> Server:
    """The feasible server left with the *most* slack (load spreading)."""
    return max(
        _feasible(servers, demand),
        key=lambda s: (s.free.gpu_gflops - demand.gpu_gflops, s.name),
    )


def least_loaded(servers: Sequence[Server], demand: ResourceDemand) -> Server:
    """The feasible server with the lowest binding-dimension utilisation."""
    return min(_feasible(servers, demand), key=lambda s: (s.load_fraction(), s.name))
