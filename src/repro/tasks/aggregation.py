"""Aggregation cost model and the multi-aggregation plan over upload trees.

Aggregating two weight vectors is an element-wise average: the cost model
charges time proportional to the model size per *merge* (combining one more
input into the running aggregate).  The flexible scheduler performs these
merges at the "middle and final nodes of the upload procedure" (the
poster), i.e. at every aggregation-capable branch node of the upload tree.

:class:`UploadAggregationPlan` walks a routed tree bottom-up and derives,
per node, how many payloads arrive, how many merges run there, and how many
payloads continue upward.  Nodes that cannot aggregate (e.g. ROADMs) relay
all incoming payloads unchanged, which costs upstream bandwidth — exactly
the behaviour that makes aggregation-point choice matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from ..errors import ConfigurationError, TaskError
from ..network.graph import Network
from ..network.paths import TreeResult


@dataclass(frozen=True)
class AggregationModel:
    """Time to merge model replicas at a node.

    Attributes:
        merge_ms_per_mb: milliseconds to fold one extra replica into the
            running aggregate, per megabit of model size (memory-bandwidth
            bound in practice).
        fixed_overhead_ms: per-merge bookkeeping time.
    """

    merge_ms_per_mb: float = 0.002
    fixed_overhead_ms: float = 0.05

    def __post_init__(self) -> None:
        if self.merge_ms_per_mb < 0:
            raise ConfigurationError(
                f"merge_ms_per_mb must be >= 0, got {self.merge_ms_per_mb}"
            )
        if self.fixed_overhead_ms < 0:
            raise ConfigurationError(
                f"fixed_overhead_ms must be >= 0, got {self.fixed_overhead_ms}"
            )

    def merge_ms(self, size_mb: float, n_merges: int = 1) -> float:
        """Time for ``n_merges`` sequential merges of a ``size_mb`` model."""
        if size_mb < 0:
            raise ConfigurationError(f"size must be >= 0 Mb, got {size_mb}")
        if n_merges < 0:
            raise ConfigurationError(f"n_merges must be >= 0, got {n_merges}")
        if n_merges == 0:
            return 0.0
        return n_merges * (self.fixed_overhead_ms + self.merge_ms_per_mb * size_mb)


@dataclass
class NodeAggregation:
    """What happens at one tree node during upload.

    Attributes:
        node: the node name.
        payloads_in: replicas arriving from children plus the node's own
            local contribution (if it hosts a local model).
        merges: merges executed here (0 when the node cannot aggregate or
            receives fewer than two payloads).
        payloads_out: replicas forwarded towards the parent.
    """

    node: str
    payloads_in: int
    merges: int
    payloads_out: int


class UploadAggregationPlan:
    """Bottom-up aggregation schedule over an upload tree.

    Args:
        network: supplies per-node aggregation capability.
        tree: the upload tree (root = global node).
        sources: nodes contributing a local model payload.

    Raises:
        TaskError: if a source is not part of the tree.
    """

    def __init__(
        self, network: Network, tree: TreeResult, sources: Sequence[str]
    ) -> None:
        self._network = network
        self._tree = tree
        self._sources: Set[str] = set(sources)
        missing = self._sources - tree.nodes
        if missing:
            raise TaskError(
                f"sources {sorted(missing)} are not in the upload tree"
            )
        self._per_node: Dict[str, NodeAggregation] = {}
        self._edge_payloads: Dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        children = self._tree.children()
        # Post-order traversal (iterative, deterministic child order).
        order: List[str] = []
        stack = [self._tree.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(children.get(node, []))
        for node in reversed(order):
            arriving = sum(
                self._edge_payloads[child] for child in children.get(node, [])
            )
            own = 1 if node in self._sources else 0
            payloads_in = arriving + own
            can_aggregate = self._network.node(node).can_aggregate
            if can_aggregate and payloads_in >= 2:
                merges = payloads_in - 1
                payloads_out = 1
            else:
                merges = 0
                payloads_out = payloads_in
            self._per_node[node] = NodeAggregation(
                node=node,
                payloads_in=payloads_in,
                merges=merges,
                payloads_out=payloads_out,
            )
            if node != self._tree.root:
                self._edge_payloads[node] = payloads_out

    @property
    def tree(self) -> TreeResult:
        return self._tree

    def at(self, node: str) -> NodeAggregation:
        """The aggregation record for one tree node."""
        try:
            return self._per_node[node]
        except KeyError:
            raise TaskError(f"node {node!r} is not in the upload tree") from None

    def payloads_on_edge(self, child: str) -> int:
        """Model replicas crossing the ``child -> parent`` tree edge."""
        try:
            return self._edge_payloads[child]
        except KeyError:
            raise TaskError(
                f"node {child!r} has no parent edge in the upload tree"
            ) from None

    @property
    def total_merges(self) -> int:
        """Merges across all nodes; always ``len(sources) - 1`` when the
        root aggregates (conservation of contributions)."""
        return sum(record.merges for record in self._per_node.values())

    @property
    def aggregation_nodes(self) -> List[str]:
        """Nodes that execute at least one merge, in name order."""
        return sorted(
            node for node, record in self._per_node.items() if record.merges > 0
        )

    @property
    def delivered_payloads(self) -> int:
        """Replicas reaching the root after its own merges (1 when the
        root can aggregate; more when it cannot)."""
        return self._per_node[self._tree.root].payloads_out
