"""Reproducible workload generation.

The paper evaluates with "30 AI tasks" whose local-model count is swept.
:func:`generate_workload` builds such mixes on any topology: it draws the
global/local placement among server nodes, a model from a configurable
catalogue subset, Poisson arrivals, and optional per-local utility scores
for the client-selection ablation — all from named random streams so each
component is independently reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..network.graph import Network
from ..sim.rng import RandomStreams
from .aitask import AITask
from .models import get_model


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic task mix.

    Attributes:
        n_tasks: number of AI tasks (paper: 30).
        n_locals: local models per task; an int for a fixed count or a
            (low, high) range sampled uniformly.
        model_names: catalogue subset to draw from (uniformly).
        demand_gbps: per-flow rate request of every task.
        rounds: training rounds per task.
        mean_interarrival_ms: Poisson arrival spacing (0 = all at time 0).
        with_utility: attach uniform(0,1) data-usefulness per local.
    """

    n_tasks: int = 30
    n_locals: "int | Tuple[int, int]" = 5
    model_names: Tuple[str, ...] = ("resnet18", "resnet50", "bert-base")
    demand_gbps: float = 10.0
    rounds: int = 5
    mean_interarrival_ms: float = 0.0
    with_utility: bool = False

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ConfigurationError(f"n_tasks must be >= 1, got {self.n_tasks}")
        if isinstance(self.n_locals, tuple):
            low, high = self.n_locals
            if low < 1 or high < low:
                raise ConfigurationError(
                    f"invalid n_locals range {self.n_locals}"
                )
        elif self.n_locals < 1:
            raise ConfigurationError(
                f"n_locals must be >= 1, got {self.n_locals}"
            )
        if not self.model_names:
            raise ConfigurationError("model_names must be non-empty")
        for name in self.model_names:
            get_model(name)  # validates existence
        if self.demand_gbps <= 0:
            raise ConfigurationError(
                f"demand must be > 0 Gbps, got {self.demand_gbps}"
            )
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if self.mean_interarrival_ms < 0:
            raise ConfigurationError(
                f"mean_interarrival_ms must be >= 0, got {self.mean_interarrival_ms}"
            )


@dataclass(frozen=True)
class TaskWorkload:
    """A generated task mix ready to feed the orchestrator."""

    tasks: Tuple[AITask, ...]
    config: WorkloadConfig

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def total_rounds(self) -> int:
        return sum(task.rounds for task in self.tasks)


def generate_workload(
    network: Network,
    config: WorkloadConfig,
    streams: Optional[RandomStreams] = None,
    *,
    prefix: str = "task",
) -> TaskWorkload:
    """Generate a reproducible task mix over the network's servers.

    Placement draws ``1 + k`` distinct server nodes per task (global
    first).  The topology must host enough servers for the largest task.

    Raises:
        ConfigurationError: when the topology has too few server nodes.
    """
    if streams is None:
        streams = RandomStreams(0)
    placement_rng = streams.stream("workload/placement")
    model_rng = streams.stream("workload/model")
    arrival_rng = streams.stream("workload/arrivals")
    utility_rng = streams.stream("workload/utility")
    size_rng = streams.stream("workload/locals")

    servers = network.servers()
    tasks: List[AITask] = []
    clock = 0.0
    for index in range(config.n_tasks):
        if isinstance(config.n_locals, tuple):
            k = size_rng.randint(config.n_locals[0], config.n_locals[1])
        else:
            k = config.n_locals
        if len(servers) < k + 1:
            raise ConfigurationError(
                f"topology offers {len(servers)} server nodes; task needs "
                f"{k + 1} (1 global + {k} locals)"
            )
        chosen = placement_rng.sample(servers, k + 1)
        model = get_model(model_rng.choice(list(config.model_names)))
        if config.mean_interarrival_ms > 0:
            clock += arrival_rng.expovariate(1.0 / config.mean_interarrival_ms)
        utility = None
        if config.with_utility:
            utility = tuple(round(utility_rng.random(), 6) for _ in range(k))
        tasks.append(
            AITask(
                task_id=f"{prefix}-{index:03d}",
                model=model,
                global_node=chosen[0],
                local_nodes=tuple(chosen[1:]),
                rounds=config.rounds,
                demand_gbps=config.demand_gbps,
                local_utility=utility,
                arrival_ms=clock,
            )
        )
    return TaskWorkload(tasks=tuple(tasks), config=config)
