"""Distributed AI task model: ML models, tasks, procedures, workloads.

A *distributed AI task* (the paper's service unit) is one global model plus
``k`` local models training collaboratively.  Every round runs a
**broadcast** procedure (global weights out), local **training**, and an
**upload** procedure (local weights back, aggregated into the global
model).  This package defines:

* :mod:`~repro.tasks.models` — a catalogue of ML model specs (parameter
  counts drive weight-transfer size, FLOPs drive training time);
* :mod:`~repro.tasks.aitask` — the :class:`AITask` request object;
* :mod:`~repro.tasks.aggregation` — cost model and plan for (multi-)
  aggregation;
* :mod:`~repro.tasks.workload` — reproducible task generators (the
  paper's "30 AI tasks" evaluation mix);
* :mod:`~repro.tasks.selection` — client-selection strategies (open
  challenge #1).
"""

from .aggregation import AggregationModel, UploadAggregationPlan
from .aitask import AITask
from .models import MLModelSpec, MODEL_CATALOGUE, get_model
from .selection import (
    select_all,
    select_random,
    select_top_utility,
    utility_proportional,
)
from .workload import TaskWorkload, WorkloadConfig, generate_workload

__all__ = [
    "AggregationModel",
    "UploadAggregationPlan",
    "AITask",
    "MLModelSpec",
    "MODEL_CATALOGUE",
    "get_model",
    "select_all",
    "select_random",
    "select_top_utility",
    "utility_proportional",
    "TaskWorkload",
    "WorkloadConfig",
    "generate_workload",
]
