"""Client (local-model) selection strategies — open challenge #1.

"We should strategically select only those local models containing useful
data to improve model learning."  Each strategy takes a task whose locals
carry utility scores and returns a task restricted to the chosen subset.
The ``abl-select`` benchmark quantifies the bandwidth/latency saved (and
the aggregate utility retained) for each strategy.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import ConfigurationError
from .aitask import AITask


def _validate_fraction(fraction: float) -> None:
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"selection fraction must be in (0, 1], got {fraction}"
        )


def _target_count(task: AITask, fraction: float) -> int:
    return max(1, round(fraction * task.n_locals))


def select_all(task: AITask) -> AITask:
    """The no-selection baseline: keep every local model."""
    return task


def select_top_utility(task: AITask, fraction: float = 0.5) -> AITask:
    """Keep the highest-utility ``fraction`` of locals (at least one).

    Deterministic; ties break on node name for reproducibility.
    """
    _validate_fraction(fraction)
    count = _target_count(task, fraction)
    ranked = sorted(
        task.local_nodes, key=lambda node: (-task.utility_of(node), node)
    )
    keep = tuple(node for node in task.local_nodes if node in set(ranked[:count]))
    return task.with_locals(keep)


def select_random(
    task: AITask, fraction: float = 0.5, rng: Optional[random.Random] = None
) -> AITask:
    """Keep a uniform random subset of locals (FedAvg-style sampling)."""
    _validate_fraction(fraction)
    if rng is None:
        rng = random.Random(0)
    count = _target_count(task, fraction)
    chosen = set(rng.sample(list(task.local_nodes), count))
    keep = tuple(node for node in task.local_nodes if node in chosen)
    return task.with_locals(keep)


def utility_proportional(
    task: AITask, fraction: float = 0.5, rng: Optional[random.Random] = None
) -> AITask:
    """Sample locals without replacement with probability ∝ utility.

    Locals with zero utility are only picked once all positive-utility
    locals are exhausted.
    """
    _validate_fraction(fraction)
    if rng is None:
        rng = random.Random(0)
    count = _target_count(task, fraction)
    remaining: List[str] = list(task.local_nodes)
    chosen: List[str] = []
    while remaining and len(chosen) < count:
        weights = [max(task.utility_of(node), 1e-9) for node in remaining]
        pick = rng.choices(remaining, weights=weights, k=1)[0]
        remaining.remove(pick)
        chosen.append(pick)
    keep = tuple(node for node in task.local_nodes if node in set(chosen))
    return task.with_locals(keep)


def selected_utility(task: AITask) -> float:
    """Aggregate utility retained by the task's current local set."""
    return sum(task.utility_of(node) for node in task.local_nodes)
