"""The distributed AI task request object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import TaskError
from .models import MLModelSpec


@dataclass(frozen=True)
class AITask:
    """A distributed AI (federated-style) training task.

    Attributes:
        task_id: unique identifier; also the network reservation owner tag.
        model: the ML model being trained (drives size and compute).
        global_node: network node hosting the global model.
        local_nodes: network nodes hosting the local models (ordered).
        rounds: training rounds to run.
        demand_gbps: rate requested per model-weight flow.
        local_utility: optional per-local data-usefulness score in [0, 1],
            consumed by client-selection strategies (challenge #1).
        arrival_ms: simulated arrival time.
        deadline_ms: optional completion deadline, relative to arrival —
            the task should finish by ``arrival_ms + deadline_ms``
            (inter-DC transfer classes; ``None`` means best-effort).
    """

    task_id: str
    model: MLModelSpec
    global_node: str
    local_nodes: Tuple[str, ...]
    rounds: int = 10
    demand_gbps: float = 10.0
    local_utility: Optional[Tuple[float, ...]] = None
    arrival_ms: float = 0.0
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.task_id:
            raise TaskError("task_id must be non-empty")
        if not self.local_nodes:
            raise TaskError(f"task {self.task_id!r}: needs >= 1 local model")
        if len(set(self.local_nodes)) != len(self.local_nodes):
            raise TaskError(
                f"task {self.task_id!r}: duplicate local nodes "
                f"{sorted(self.local_nodes)}"
            )
        if self.global_node in self.local_nodes:
            raise TaskError(
                f"task {self.task_id!r}: global node {self.global_node!r} "
                "cannot also host a local model"
            )
        if self.rounds < 1:
            raise TaskError(f"task {self.task_id!r}: rounds must be >= 1")
        if self.demand_gbps <= 0:
            raise TaskError(
                f"task {self.task_id!r}: demand must be > 0 Gbps"
            )
        if self.local_utility is not None:
            if len(self.local_utility) != len(self.local_nodes):
                raise TaskError(
                    f"task {self.task_id!r}: utility length "
                    f"{len(self.local_utility)} != locals {len(self.local_nodes)}"
                )
            if any(not 0.0 <= u <= 1.0 for u in self.local_utility):
                raise TaskError(
                    f"task {self.task_id!r}: utilities must lie in [0, 1]"
                )
        if self.arrival_ms < 0:
            raise TaskError(f"task {self.task_id!r}: arrival must be >= 0 ms")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise TaskError(
                f"task {self.task_id!r}: deadline must be > 0 ms, "
                f"got {self.deadline_ms}"
            )

    @property
    def n_locals(self) -> int:
        """Number of local models."""
        return len(self.local_nodes)

    @property
    def size_mb(self) -> float:
        """Model-weight payload moved per flow per procedure, in megabits."""
        return self.model.size_mb

    def utility_of(self, node: str) -> float:
        """Data-usefulness of the local model at ``node`` (default 1.0)."""
        if node not in self.local_nodes:
            raise TaskError(
                f"task {self.task_id!r}: {node!r} hosts no local model"
            )
        if self.local_utility is None:
            return 1.0
        return self.local_utility[self.local_nodes.index(node)]

    def with_locals(self, local_nodes: Tuple[str, ...]) -> "AITask":
        """A copy restricted to a subset of locals (client selection).

        Utilities are carried over for the kept locals.
        """
        if not set(local_nodes) <= set(self.local_nodes):
            extra = sorted(set(local_nodes) - set(self.local_nodes))
            raise TaskError(
                f"task {self.task_id!r}: {extra} are not locals of this task"
            )
        utility = None
        if self.local_utility is not None:
            utility = tuple(self.utility_of(n) for n in local_nodes)
        return AITask(
            task_id=self.task_id,
            model=self.model,
            global_node=self.global_node,
            local_nodes=tuple(local_nodes),
            rounds=self.rounds,
            demand_gbps=self.demand_gbps,
            local_utility=utility,
            arrival_ms=self.arrival_ms,
            deadline_ms=self.deadline_ms,
        )
