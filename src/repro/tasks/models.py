"""Catalogue of ML model specifications.

The poster notes that "AI tasks can be implemented using different machine
learning models that include different parameters" — the scheduler only
needs two numbers per model: the **weight size** moved every round
(parameters × bytes/parameter) and the **training work** per round
(FLOPs), which with server GFLOPS gives the training time.  The catalogue
lists representative vision and language models spanning four orders of
magnitude in size, so workloads can mix small CNNs with transformer-class
models whose "model size is increasing rapidly".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from ..units import megabits_from_parameters


@dataclass(frozen=True)
class MLModelSpec:
    """Static properties of a trainable model.

    Attributes:
        name: catalogue key.
        parameters: trainable parameter count.
        train_gflop_per_round: compute per local training round.
        bytes_per_parameter: weight encoding (4 = fp32, 2 = fp16).
    """

    name: str
    parameters: float
    train_gflop_per_round: float
    bytes_per_parameter: float = 4.0

    def __post_init__(self) -> None:
        if self.parameters <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: parameters must be > 0"
            )
        if self.train_gflop_per_round < 0:
            raise ConfigurationError(
                f"model {self.name!r}: training work must be >= 0"
            )
        if self.bytes_per_parameter <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: bytes_per_parameter must be > 0"
            )

    @property
    def size_mb(self) -> float:
        """Weights size in megabits (what broadcast/upload move)."""
        return megabits_from_parameters(self.parameters, self.bytes_per_parameter)

    def half_precision(self) -> "MLModelSpec":
        """The same model exchanged in fp16 (halves communication)."""
        return MLModelSpec(
            name=f"{self.name}-fp16",
            parameters=self.parameters,
            train_gflop_per_round=self.train_gflop_per_round,
            bytes_per_parameter=2.0,
        )


#: Representative models; sizes are the usual published parameter counts,
#: per-round work assumes one pass over a modest local shard.
MODEL_CATALOGUE: Dict[str, MLModelSpec] = {
    spec.name: spec
    for spec in (
        MLModelSpec("lenet5", parameters=6.2e4, train_gflop_per_round=1.0),
        MLModelSpec("mobilenet-v2", parameters=3.5e6, train_gflop_per_round=90.0),
        MLModelSpec("resnet18", parameters=1.17e7, train_gflop_per_round=550.0),
        MLModelSpec("resnet50", parameters=2.56e7, train_gflop_per_round=1_240.0),
        MLModelSpec("vit-base", parameters=8.6e7, train_gflop_per_round=5_300.0),
        MLModelSpec("bert-base", parameters=1.10e8, train_gflop_per_round=6_700.0),
        MLModelSpec("bert-large", parameters=3.40e8, train_gflop_per_round=23_000.0),
        MLModelSpec("gpt2-medium", parameters=3.55e8, train_gflop_per_round=21_000.0),
        MLModelSpec("gpt2-xl", parameters=1.56e9, train_gflop_per_round=95_000.0),
    )
}


def get_model(name: str) -> MLModelSpec:
    """Look up a catalogue model by name.

    Raises:
        ConfigurationError: for unknown names, listing what exists.
    """
    try:
        return MODEL_CATALOGUE[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_CATALOGUE))
        raise ConfigurationError(
            f"unknown model {name!r}; catalogue has: {known}"
        ) from None
