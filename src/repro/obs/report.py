"""Trace aggregation and rendering: ``repro obs report`` / ``tail``.

The report reads a trace (live file plus rotations), folds every line
into per-span timing rows and per-counter/gauge/histogram totals, and
renders aligned text tables.  The encoding makes aggregation a pure
sum: span and event lines are one occurrence each, counter and
histogram lines are flush deltas, gauges are last-write-wins.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .registry import label_text
from .trace import iter_trace

#: Aggregated trace: the dict produced by :func:`aggregate_trace`.
TraceSummary = Dict[str, Any]


def _span_key(record: Dict[str, Any], by: Tuple[str, ...]) -> str:
    """Span aggregation key: the name, plus any requested label values."""
    name = record.get("name", "?")
    labels = record.get("labels") or {}
    extra = [f"{key}={labels[key]}" for key in by if key in labels]
    return f"{name}[{','.join(extra)}]" if extra else name


def _label_suffix(record: Dict[str, Any]) -> str:
    labels = record.get("labels") or {}
    return label_text(tuple(sorted(labels.items())))


def aggregate_trace(
    records: Iterable[Dict[str, Any]], *, span_labels: Tuple[str, ...] = ()
) -> TraceSummary:
    """Fold trace records into one summary dict.

    Args:
        records: parsed trace lines (see :func:`repro.obs.iter_trace`).
        span_labels: label names to split span rows by (e.g.
            ``("scheduler",)`` gives one row per scheduler per span).
    """
    spans: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    hists: Dict[str, Dict[str, Any]] = {}
    sessions = 0
    for record in records:
        kind = record.get("type")
        if kind == "meta":
            sessions += 1
        elif kind == "span":
            key = _span_key(record, span_labels)
            stats = spans.setdefault(
                key,
                {
                    "count": 0,
                    "total_ms": 0.0,
                    "max_ms": 0.0,
                    "total_sim_ms": 0.0,
                    "sim_count": 0,
                },
            )
            ms = float(record.get("ms", 0.0))
            stats["count"] += 1
            stats["total_ms"] += ms
            if ms > stats["max_ms"]:
                stats["max_ms"] = ms
            if record.get("sim_ms") is not None:
                stats["total_sim_ms"] += float(record["sim_ms"])
                stats["sim_count"] += 1
        elif kind == "event":
            key = record.get("name", "?") + _label_suffix(record)
            counters[key] = counters.get(key, 0) + 1
        elif kind == "counter":
            key = record.get("name", "?") + _label_suffix(record)
            counters[key] = counters.get(key, 0) + float(
                record.get("value", 0)
            )
        elif kind == "gauge":
            key = record.get("name", "?") + _label_suffix(record)
            gauges[key] = float(record.get("value", 0.0))
        elif kind == "hist":
            key = record.get("name", "?") + _label_suffix(record)
            edges = tuple(record.get("edges", ()))
            counts = list(record.get("counts", ()))
            merged = hists.get(key)
            if merged is None or tuple(merged["edges"]) != edges:
                hists[key] = {"edges": list(edges), "counts": counts}
            else:
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], counts)
                ]
    return {
        "sessions": sessions,
        "spans": spans,
        "counters": counters,
        "gauges": gauges,
        "histograms": hists,
    }


def _format_table(
    headers: Tuple[str, ...], rows: List[Tuple[str, ...]]
) -> List[str]:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(w) if index == 0 else cell.rjust(w)
                for index, (cell, w) in enumerate(zip(row, widths))
            ).rstrip()
        )
    return lines


def render_summary(summary: TraceSummary) -> str:
    """The ``repro obs report`` text: spans, counters, gauges, histograms."""
    lines: List[str] = []
    sessions = summary.get("sessions", 0)
    lines.append(f"trace sessions: {sessions}")
    spans = summary.get("spans", {})
    if spans:
        rows = []
        for name in sorted(spans):
            stats = spans[name]
            count = int(stats["count"])
            mean = stats["total_ms"] / count if count else 0.0
            sim = (
                f"{stats['total_sim_ms']:.1f}"
                if stats.get("sim_count")
                else "-"
            )
            rows.append(
                (
                    name,
                    str(count),
                    f"{stats['total_ms']:.1f}",
                    f"{mean:.3f}",
                    f"{stats['max_ms']:.3f}",
                    sim,
                )
            )
        lines.append("")
        lines.append("spans:")
        lines.extend(
            "  " + line
            for line in _format_table(
                ("name", "count", "total_ms", "mean_ms", "max_ms", "sim_ms"),
                rows,
            )
        )
    counters = summary.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        rows = [
            (name, f"{counters[name]:g}") for name in sorted(counters)
        ]
        lines.extend(
            "  " + line for line in _format_table(("name", "value"), rows)
        )
    gauges = summary.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        rows = [(name, f"{gauges[name]:g}") for name in sorted(gauges)]
        lines.extend(
            "  " + line for line in _format_table(("name", "value"), rows)
        )
    hists = summary.get("histograms", {})
    if hists:
        lines.append("")
        lines.append("histograms:")
        for name in sorted(hists):
            histogram = hists[name]
            count = sum(histogram["counts"])
            lines.append(f"  {name}  (n={count})")
            edges = histogram["edges"]
            # Half-open [lo, hi) buckets: each label is its exclusive
            # upper edge; the overflow bucket includes the last edge.
            labels = [f"<{edge:g}" for edge in edges] + [
                f">={edges[-1]:g}" if edges else "all"
            ]
            for label, bucket in zip(labels, histogram["counts"]):
                if bucket:
                    lines.append(f"    {label:>10}  {bucket}")
    if not (spans or counters or gauges or hists):
        lines.append("(trace carries no telemetry records)")
    return "\n".join(lines)


def report(path: str, *, span_labels: Tuple[str, ...] = ()) -> str:
    """Aggregate a trace file (plus rotations) and render the report."""
    return render_summary(
        aggregate_trace(iter_trace(path), span_labels=span_labels)
    )


def format_record(record: Dict[str, Any]) -> Optional[str]:
    """One trace record as one human line (``repro obs tail``)."""
    kind = record.get("type")
    if kind == "meta":
        return f"[meta]    session pid={record.get('pid')}"
    name = record.get("name", "?")
    suffix = _label_suffix(record)
    if kind == "span":
        sim = (
            f" sim={record['sim_ms']:.3f}ms"
            if record.get("sim_ms") is not None
            else ""
        )
        return f"[span]    {name}{suffix} {record.get('ms', 0.0):.3f}ms{sim}"
    if kind == "event":
        sim = (
            f" sim={record['sim_ms']:.3f}ms"
            if record.get("sim_ms") is not None
            else ""
        )
        return f"[event]   {name}{suffix}{sim}"
    if kind == "counter":
        return f"[counter] {name}{suffix} +{record.get('value', 0):g}"
    if kind == "gauge":
        return f"[gauge]   {name}{suffix} = {record.get('value', 0.0):g}"
    if kind == "hist":
        count = sum(record.get("counts", ()))
        return f"[hist]    {name}{suffix} +{count} observations"
    return None
