"""The trace sink: out-of-band telemetry as rotating JSONL files.

A :class:`TraceSink` receives every telemetry record the active
:class:`~repro.obs.registry.Telemetry` emits — span closures, point
events, and counter/gauge/histogram flush deltas — and appends each as
one JSON line.  The file rotates by size (``path`` -> ``path.1`` ->
``path.2`` ...) so an always-on trace cannot eat the disk, and the sink
opens in append mode so successive sessions extend one trajectory.

Record vocabulary (the ``type`` field):

* ``meta`` — one line per session: pid, host time, schema version.
* ``span`` — one closed span: name, labels, wall-clock ``ms``, and
  ``sim_ms`` when a simulator clock was bound while the span ran.
* ``event`` — a point occurrence (e.g. a fault transition): name,
  labels, optional ``sim_ms``.
* ``counter`` / ``gauge`` / ``hist`` — flush-time snapshots.  Counter
  and histogram lines carry *deltas since the previous flush*, so an
  aggregator simply sums every line it sees; gauge lines carry the
  current value (last one wins).

Everything here is strictly out-of-band: nothing in this module is
reachable from result rows, golden files, or result sinks, and the
:mod:`repro.obs` facade compiles to a no-op when telemetry is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from ..errors import ConfigurationError

#: Trace schema version, stamped on every session's meta line.
TRACE_SCHEMA = 1


class TraceSink:
    """Rotating JSONL writer for telemetry records.

    Args:
        path: the live trace file; rotations move it to ``path.1`` ...
            ``path.<backups>`` (oldest dropped).
        max_bytes: rotate once the live file would exceed this size.
        backups: rotated files to keep (0 truncates instead of keeping).
    """

    def __init__(
        self,
        path: str,
        *,
        max_bytes: int = 16_000_000,
        backups: int = 2,
    ) -> None:
        if max_bytes < 4096:
            raise ConfigurationError(
                f"max_bytes must be >= 4096, got {max_bytes}"
            )
        if backups < 0:
            raise ConfigurationError(f"backups must be >= 0, got {backups}")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0

    # -- plumbing ----------------------------------------------------------

    def _open(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = self._handle.tell()
        self._write_locked(
            {
                "type": "meta",
                "schema": TRACE_SCHEMA,
                "pid": os.getpid(),
                "wall_s": round(time.time(), 3),
            }
        )

    def _rotate(self) -> None:
        self._handle.close()
        self._handle = None
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{index}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        self._open()

    def _write_locked(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        if self._size + len(line) + 1 > self.max_bytes and self._size > 0:
            self._rotate()
        self._handle.write(line)
        self._handle.write("\n")
        self._size += len(line) + 1

    # -- API ---------------------------------------------------------------

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as one JSON line (thread-safe)."""
        with self._lock:
            if self._handle is None:
                self._open()
            self._write_locked(record)

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class MemorySink:
    """An in-memory trace sink: records collect into a plain list.

    Duck-typed against :class:`TraceSink` (``write``/``flush``/
    ``close``), so a :class:`~repro.obs.registry.Telemetry` capture
    registry can buffer a single run's records for shipping over the
    result socket instead of touching the filesystem.  Records are
    stored as the dicts the registry produced (JSON-able by the same
    contract the file sink enforces at write time).
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def flush(self) -> None:  # pragma: no cover - nothing buffered
        pass

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    def __enter__(self) -> "MemorySink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def trace_files(path: str) -> List[str]:
    """The live trace plus its rotations, oldest first."""
    paths: List[str] = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        paths.append(f"{path}.{index}")
        index += 1
    paths.reverse()
    if os.path.exists(path):
        paths.append(path)
    return paths


def iter_trace(
    paths: Union[str, Sequence[str]], *, strict: bool = True
) -> Iterator[Dict[str, Any]]:
    """Parsed records from one or more trace files, in file order.

    A single string expands to the file plus its rotations (oldest
    first).  A malformed line raises with its location when ``strict``;
    a *final* partial line is always tolerated — a live trace may be
    mid-write.
    """
    if isinstance(paths, str):
        expanded = trace_files(paths)
        if not expanded:
            raise ConfigurationError(f"no trace file at {paths!r}")
    else:
        expanded = list(paths)
    for path in expanded:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except ValueError:
                if number == len(lines):
                    continue  # live trace mid-write
                if strict:
                    raise ConfigurationError(
                        f"{path}:{number}: malformed trace line: {text[:80]!r}"
                    ) from None
                continue
            if isinstance(record, dict):
                yield record


def follow_trace(
    path: str,
    *,
    poll_s: float = 0.5,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield records appended to a live trace, surviving rotations.

    The rotation-safe tail: the open handle follows the *renamed* file
    when :class:`TraceSink` rotates (``path`` -> ``path.1``), so after
    re-stat detects the swap (inode change, or the live file shrinking
    under our read position) the old handle is **drained to its end** —
    including any line that was only partially flushed when we last
    read — before the new live file is opened from offset zero.
    Holding a byte offset into ``path`` across a rotation, as the old
    tail did, silently dropped the tail of every rotated-out file.

    Args:
        path: the live trace file (rotations follow TraceSink naming).
        poll_s: sleep between polls while no new data is available.
        stop: optional callable; once it returns true and the current
            file has no unread data, the generator returns (tests use
            this — the CLI tails forever until interrupted).
    """

    def _parse(pending: str, chunk: str) -> Any:
        pending += chunk
        complete, _sep, rest = pending.rpartition("\n")
        records = []
        if _sep:
            for line in complete.split("\n"):
                text = line.strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                except ValueError:
                    continue  # torn or foreign line: skip, keep tailing
                if isinstance(record, dict):
                    records.append(record)
        return records, rest

    handle = None
    inode = None
    pending = ""
    try:
        while True:
            if handle is None:
                try:
                    handle = open(path, "r", encoding="utf-8")
                    inode = os.fstat(handle.fileno()).st_ino
                except OSError:
                    if stop is not None and stop():
                        return
                    time.sleep(poll_s)
                    continue
            chunk = handle.read()
            if chunk:
                records, pending = _parse(pending, chunk)
                for record in records:
                    yield record
                continue
            # No new data: has the live file been rotated (new inode) or
            # truncated (backups=0 rotation) underneath our handle?
            rotated = False
            try:
                stat = os.stat(path)
                if stat.st_ino != inode or stat.st_size < handle.tell():
                    rotated = True
            except OSError:
                rotated = True
            if rotated:
                # Drain the old file through the still-open handle (it
                # follows the rename), then start over on the new file.
                records, pending = _parse(pending, handle.read())
                for record in records:
                    yield record
                handle.close()
                handle = None
                pending = ""  # a writer that died mid-line stays dead
                continue
            if stop is not None and stop():
                return
            time.sleep(poll_s)
    finally:
        if handle is not None:
            handle.close()
