"""Analytics over merged campaign traces: ``repro obs analyze``.

Consumes the trace a :class:`~repro.obs.collect.TraceCollector` wrote
and answers "where did the time go" across the whole fleet:

* **Per-run critical path** — queue wait (campaign start or last
  re-queue until dispatch), worker execution split into its
  instrumented phases (``run.build`` -> ``run.schedule``), the
  coordinator-side ``run.drain``, and re-queue gaps for runs that
  bounced off a dead worker.
* **Latency tables** — nearest-rank p50/p95/p99 per phase, per worker,
  and per scenario tag.
* **Flame summary** — span-tree paths (``campaign;run;run.schedule``)
  aggregated by count and total wall time, from the span ids/parents
  the capture registries stamp.

Everything works on the skew-normalised coordinator timeline the
collector produced; sim-time fields pass through untouched.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from .report import _format_table
from .trace import iter_trace

#: Worker-side phases summed from spans, in critical-path order.
EXEC_PHASES = ("run.build", "run.schedule")

#: Maximum span-tree depth the flame walk will follow (cycle guard).
MAX_FLAME_DEPTH = 32


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


def _stats(values: List[float]) -> Dict[str, float]:
    return {
        "count": len(values),
        "total_ms": round(sum(values), 3),
        "p50_ms": round(_percentile(values, 50), 3),
        "p95_ms": round(_percentile(values, 95), 3),
        "p99_ms": round(_percentile(values, 99), 3),
        "max_ms": round(max(values), 3),
    }


def load_campaign(
    source: Union[str, Iterable[Dict[str, Any]]]
) -> Dict[str, Any]:
    """Fold a merged trace into per-run/per-campaign raw material.

    Accepts a trace path (rotations included) or parsed records.
    Returns a dict with the campaign id and start, a ``runs`` mapping
    (run token -> spans, events, dispatch/result/requeue stamps), and
    the campaign-level gauges the collector wrote.
    """
    records = iter_trace(source, strict=False) if isinstance(source, str) else source
    campaign: Dict[str, Any] = {
        "id": None,
        "t0_s": None,
        "span_ms": None,
        "runs": {},
        "gauges": {},
        "workers": set(),
    }
    runs: Dict[str, Dict[str, Any]] = campaign["runs"]

    def run_entry(token: str) -> Dict[str, Any]:
        entry = runs.get(token)
        if entry is None:
            entry = runs[token] = {
                "scenario": None,
                "seed": None,
                "workers": set(),
                "spans": [],
                "dispatch_s": [],
                "result_s": [],
                "requeue_s": [],
            }
        return entry

    for record in records:
        if not isinstance(record, dict):
            continue
        kind = record.get("type")
        ctx = record.get("ctx")
        ctx = ctx if isinstance(ctx, dict) else {}
        if kind == "meta" and record.get("collect"):
            campaign["id"] = record.get("campaign")
            campaign["t0_s"] = record.get("wall_s")
        elif kind == "gauge":
            name = record.get("name")
            if isinstance(name, str) and name.startswith("collect."):
                campaign["gauges"][name[len("collect."):]] = record.get("value")
        elif kind == "span":
            name = record.get("name")
            if name == "campaign":
                campaign["span_ms"] = record.get("ms")
                continue
            token = ctx.get("run")
            if not isinstance(token, str):
                continue
            entry = run_entry(token)
            if entry["scenario"] is None and "scenario" in ctx:
                entry["scenario"] = ctx.get("scenario")
                entry["seed"] = ctx.get("seed")
            worker = record.get("worker")
            if isinstance(worker, str) and worker != "coordinator":
                entry["workers"].add(worker)
                campaign["workers"].add(worker)
            entry["spans"].append(record)
        elif kind == "event":
            name = record.get("name")
            token = ctx.get("run")
            stamp = record.get("t_s")
            if not isinstance(token, str) or not isinstance(stamp, (int, float)):
                continue
            entry = run_entry(token)
            if name == "collect.dispatch":
                entry["dispatch_s"].append(float(stamp))
            elif name == "collect.result":
                entry["result_s"].append(float(stamp))
            elif name == "collect.requeue":
                entry["requeue_s"].append(float(stamp))
    return campaign


def _span_total(spans: List[Dict[str, Any]], name: str) -> float:
    return sum(
        float(span.get("ms", 0.0)) for span in spans if span.get("name") == name
    )


def _flame_paths(
    spans: List[Dict[str, Any]]
) -> List[Tuple[str, float]]:
    """(path, ms) per identified span, path = names from root down."""
    by_id = {
        span["span_id"]: span
        for span in spans
        if isinstance(span.get("span_id"), str)
    }
    paths: List[Tuple[str, float]] = []
    for span in spans:
        name = str(span.get("name", "?"))
        chain = [name]
        parent = span.get("parent")
        depth = 0
        while isinstance(parent, str) and depth < MAX_FLAME_DEPTH:
            above = by_id.get(parent)
            if above is None:
                break
            chain.append(str(above.get("name", "?")))
            parent = above.get("parent")
            depth += 1
        paths.append((";".join(reversed(chain)), float(span.get("ms", 0.0))))
    return paths


def analyze_campaign(campaign: Dict[str, Any]) -> Dict[str, Any]:
    """Critical paths, percentile tables, and the flame summary."""
    runs = campaign["runs"]
    if not runs:
        raise ConfigurationError(
            "trace contains no collected runs — was the sweep executed "
            "with collection on (scenarios sweep --collect)?"
        )
    campaign_t0 = campaign.get("t0_s")
    per_run: List[Dict[str, Any]] = []
    phase_values: Dict[str, List[float]] = {
        "queue_wait": [],
        "build": [],
        "schedule": [],
        "exec_other": [],
        "drain": [],
        "requeue_gap": [],
        "critical_path": [],
    }
    by_worker: Dict[str, List[float]] = {}
    by_scenario: Dict[str, List[float]] = {}
    flame: Dict[str, Dict[str, float]] = {}
    complete = 0
    for token, entry in runs.items():
        spans = entry["spans"]
        build = _span_total(spans, "run.build")
        schedule = _span_total(spans, "run.schedule")
        drain = _span_total(spans, "run.drain")
        exec_ms = _span_total(spans, "run")
        exec_other = max(0.0, exec_ms - build - schedule)
        dispatches = sorted(entry["dispatch_s"])
        requeues = sorted(entry["requeue_s"])
        queue_wait = 0.0
        if dispatches and isinstance(campaign_t0, (int, float)):
            queue_wait = max(0.0, (dispatches[0] - float(campaign_t0)) * 1000.0)
        requeue_gap = 0.0
        for stamp in requeues:
            later = [d for d in dispatches if d >= stamp]
            if later:
                requeue_gap += (later[0] - stamp) * 1000.0
        critical = queue_wait + requeue_gap + exec_ms + drain
        if exec_ms > 0.0:
            complete += 1
        worker = next(iter(sorted(entry["workers"])), "?")
        scenario = entry["scenario"] or "?"
        per_run.append(
            {
                "run": token,
                "scenario": scenario,
                "seed": entry["seed"],
                "worker": worker,
                "requeues": len(requeues),
                "queue_wait_ms": round(queue_wait, 3),
                "build_ms": round(build, 3),
                "schedule_ms": round(schedule, 3),
                "exec_ms": round(exec_ms, 3),
                "drain_ms": round(drain, 3),
                "requeue_gap_ms": round(requeue_gap, 3),
                "critical_path_ms": round(critical, 3),
            }
        )
        phase_values["queue_wait"].append(queue_wait)
        phase_values["build"].append(build)
        phase_values["schedule"].append(schedule)
        phase_values["exec_other"].append(exec_other)
        phase_values["drain"].append(drain)
        phase_values["requeue_gap"].append(requeue_gap)
        phase_values["critical_path"].append(critical)
        by_worker.setdefault(worker, []).append(exec_ms)
        by_scenario.setdefault(scenario, []).append(critical)
        for path, ms in _flame_paths(spans):
            node = flame.setdefault(path, {"count": 0, "total_ms": 0.0})
            node["count"] += 1
            node["total_ms"] += ms
    for node in flame.values():
        node["total_ms"] = round(node["total_ms"], 3)
    gauges = campaign.get("gauges", {})
    expected = gauges.get("runs_executed")
    if not isinstance(expected, (int, float)) or expected <= 0:
        expected = len(per_run)
    coverage = complete / expected if expected else 1.0
    phases = {name: _stats(values) for name, values in phase_values.items()}
    metrics: Dict[str, Any] = {
        "runs": len(per_run),
        "runs_complete": complete,
        "coverage": round(coverage, 6),
        "workers": len(campaign.get("workers", ())) or len(by_worker),
        "requeues": sum(entry["requeues"] for entry in per_run),
        "clock_skew_max_ms": gauges.get("max_abs_skew_ms", 0.0),
    }
    for name, stats in phases.items():
        for stat in ("p50_ms", "p95_ms", "p99_ms"):
            metrics[f"phase.{name}.{stat[:-3]}_ms"] = stats[stat]
    return {
        "campaign": campaign.get("id"),
        "campaign_ms": campaign.get("span_ms"),
        "runs": per_run,
        "phases": phases,
        "by_worker": {
            worker: _stats(values) for worker, values in by_worker.items()
        },
        "by_scenario": {
            scenario: _stats(values)
            for scenario, values in by_scenario.items()
        },
        "flame": flame,
        "gauges": dict(gauges),
        "metrics": metrics,
    }


def analyze(source: Union[str, Iterable[Dict[str, Any]]]) -> Dict[str, Any]:
    """Load + analyze in one call (what the CLI uses)."""
    return analyze_campaign(load_campaign(source))


def _stats_rows(
    table: Dict[str, Dict[str, float]]
) -> List[Tuple[str, ...]]:
    rows = []
    for name in sorted(table):
        stats = table[name]
        rows.append(
            (
                name,
                str(int(stats["count"])),
                f"{stats['p50_ms']:.3f}",
                f"{stats['p95_ms']:.3f}",
                f"{stats['p99_ms']:.3f}",
                f"{stats['max_ms']:.3f}",
                f"{stats['total_ms']:.1f}",
            )
        )
    return rows


def render_analysis(analysis: Dict[str, Any], *, top: int = 15) -> str:
    """The ``repro obs analyze`` text report."""
    lines: List[str] = []
    metrics = analysis["metrics"]
    campaign_ms = analysis.get("campaign_ms")
    lines.append(f"campaign: {analysis.get('campaign') or '?'}")
    lines.append(
        f"runs: {metrics['runs']} ({metrics['runs_complete']} complete, "
        f"coverage {metrics['coverage']:.2f})  workers: {metrics['workers']}"
        f"  requeues: {metrics['requeues']}"
        + (f"  wall: {campaign_ms:.0f}ms" if campaign_ms else "")
    )
    skew = metrics.get("clock_skew_max_ms")
    if isinstance(skew, (int, float)) and skew:
        lines.append(f"max worker clock skew: {skew:.3f}ms (normalised)")
    headers = ("", "count", "p50_ms", "p95_ms", "p99_ms", "max_ms", "total_ms")
    lines.append("")
    lines.append("critical path by phase:")
    lines.extend(
        "  " + line
        for line in _format_table(headers, _stats_rows(analysis["phases"]))
    )
    lines.append("")
    lines.append("exec latency by worker:")
    lines.extend(
        "  " + line
        for line in _format_table(headers, _stats_rows(analysis["by_worker"]))
    )
    lines.append("")
    lines.append("critical path by scenario:")
    lines.extend(
        "  " + line
        for line in _format_table(
            headers, _stats_rows(analysis["by_scenario"])
        )
    )
    flame = analysis["flame"]
    if flame:
        lines.append("")
        lines.append(f"flame summary (top {top} paths by total wall time):")
        ordered = sorted(
            flame.items(), key=lambda item: (-item[1]["total_ms"], item[0])
        )[: max(0, top)]
        rows = [
            (path, str(int(node["count"])), f"{node['total_ms']:.1f}")
            for path, node in ordered
        ]
        lines.extend(
            "  " + line
            for line in _format_table(("path", "count", "total_ms"), rows)
        )
    slowest = sorted(
        analysis["runs"],
        key=lambda run: -run["critical_path_ms"],
    )[: max(0, min(top, 10))]
    lines.append("")
    lines.append("slowest runs:")
    rows = [
        (
            f"{run['scenario']}#{run['run'][:8]}",
            run["worker"],
            f"{run['queue_wait_ms']:.1f}",
            f"{run['exec_ms']:.1f}",
            f"{run['drain_ms']:.1f}",
            str(run["requeues"]),
            f"{run['critical_path_ms']:.1f}",
        )
        for run in slowest
    ]
    lines.extend(
        "  " + line
        for line in _format_table(
            ("run", "worker", "queue_ms", "exec_ms", "drain_ms", "requeues",
             "critical_ms"),
            rows,
        )
    )
    return "\n".join(lines)
