"""The telemetry registry: counters, gauges, histograms, and spans.

One :class:`Telemetry` instance aggregates everything a process records
between ``enable()`` and ``disable()``.  Counters and gauges are keyed
by ``(name, sorted labels)``; histograms use fixed bucket edges with
**half-open** ``[lo, hi)`` buckets (see :class:`Histogram` — a value
exactly on an edge always lands in the bucket above, in the direct path
and the flush-delta path alike) so two registries (or two flush deltas)
merge by plain addition; spans aggregate per *name* (labels ride only
on the trace lines, keeping the in-memory footprint independent of run
count).

Spans record wall time always and simulated time whenever a simulator
clock is bound (:meth:`Telemetry.bind_sim_clock` — the campaign runner
binds ``lambda: sim.now`` for the duration of a run), so one trace
answers both "where did the wall-clock go" and "where did sim time go".

Everything is out-of-band by construction: recording mutates only this
registry and the optional :class:`~repro.obs.trace.TraceSink`; nothing
here can reach result rows or result sinks.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from .trace import TraceSink

#: Sorted ``(key, value)`` label pairs — the hashable label identity.
LabelItems = Tuple[Tuple[str, Any], ...]

#: Default histogram bucket edges (milliseconds-flavoured, but unitless).
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)


def label_key(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


def label_text(items: LabelItems) -> str:
    """Human form of a label key: ``{a=1,b=x}`` (empty string for none)."""
    if not items:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in items) + "}"


class Histogram:
    """Fixed-edge histogram: ``len(edges) + 1`` buckets plus sum/count.

    Buckets are **half-open intervals** ``[lo, hi)``: bucket ``i``
    counts observations with ``edges[i-1] <= value < edges[i]`` (the
    first bucket is ``(-inf, edges[0])``, the final bucket is the
    ``>= edges[-1]`` overflow).  A value exactly equal to an edge lands
    in the bucket *above* it, everywhere — direct :meth:`observe`, the
    flush-delta trace encoding, and ``repro obs report`` all agree, so
    merged traces never disagree with in-process aggregates on boundary
    values.  Fixed edges make histograms mergeable by adding bucket
    counts — the property the trace's flush-delta encoding relies on.
    """

    __slots__ = ("edges", "counts", "total", "count")

    def __init__(self, edges: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ConfigurationError(
                f"histogram edges must be strictly increasing, got {edges}"
            )
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = 0
        for index, edge in enumerate(self.edges):
            if value < edge:  # half-open [lo, hi): edge values go above
                break
        else:
            index = len(self.edges)
        self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }


class Span:
    """One in-flight timed region; created by :meth:`Telemetry.span`.

    Context manager: wall time runs from ``__enter__`` to ``__exit__``;
    simulated time is captured when the owning registry has a simulator
    clock bound at both ends.  When the registry carries a collection
    context (distributed trace capture) the span additionally gets a
    registry-unique id, a parent id from the per-thread span stack, and
    a ``t0_s`` wall-epoch start stamp so the coordinator can skew-align
    and tree-assemble spans from many workers.
    """

    __slots__ = (
        "_telemetry", "name", "labels", "_wall0", "_sim0",
        "_span_id", "_parent", "_t0_s",
    )

    def __init__(
        self, telemetry: "Telemetry", name: str, labels: LabelItems
    ) -> None:
        self._telemetry = telemetry
        self.name = name
        self.labels = labels
        self._wall0 = 0.0
        self._sim0: Optional[float] = None
        self._span_id: Optional[str] = None
        self._parent: Optional[str] = None
        self._t0_s: Optional[float] = None

    def __enter__(self) -> "Span":
        telemetry = self._telemetry
        clock = telemetry._sim_clock
        self._sim0 = clock() if clock is not None else None
        if telemetry.context is not None:
            self._span_id, self._parent = telemetry._enter_span()
            self._t0_s = time.time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        wall_ms = (time.perf_counter() - self._wall0) * 1000.0
        sim_ms: Optional[float] = None
        clock = self._telemetry._sim_clock
        if clock is not None and self._sim0 is not None:
            sim_ms = clock() - self._sim0
        self._telemetry._record_span(
            self.name, self.labels, wall_ms, sim_ms,
            span_id=self._span_id, parent=self._parent, t0_s=self._t0_s,
        )
        return False


class Telemetry:
    """A process-local telemetry registry (thread-safe).

    Args:
        trace: optional trace sink (any object with ``write``/``flush``/
            ``close``, e.g. :class:`TraceSink` or
            :class:`~repro.obs.trace.MemorySink`) receiving every
            span/event as it happens and counter/gauge/histogram deltas
            on flush.
        context: optional collection-context stamp (``campaign``,
            ``run``, ...).  When set, every trace record carries it as
            ``ctx``, spans gain ids/parents/epoch starts, and events
            gain wall stamps — the extra fields distributed trace
            merging needs.  ``None`` (the default) keeps records in
            their compact process-local form.
        parent_span: the collector-side span id adopted as the parent
            of this registry's root spans.
    """

    def __init__(
        self,
        trace: Optional[TraceSink] = None,
        *,
        context: Optional[Mapping[str, Any]] = None,
        parent_span: Optional[str] = None,
    ) -> None:
        self.trace = trace
        self.context: Optional[Dict[str, Any]] = (
            dict(context) if context else None
        )
        self.parent_span = parent_span
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelItems], float] = {}
        self._gauges: Dict[Tuple[str, LabelItems], float] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._spans: Dict[str, Dict[str, float]] = {}
        self._flushed_counters: Dict[Tuple[str, LabelItems], float] = {}
        self._flushed_hist_counts: Dict[Tuple[str, LabelItems], List[int]] = {}
        self._sim_clock: Optional[Callable[[], float]] = None
        self._span_seq = 0
        self._span_stack = threading.local()
        #: Instrumentation call count — the obs overhead benchmark uses
        #: this to bound what the *disabled* guard would have cost.
        self.touches = 0

    # -- sim-time binding --------------------------------------------------

    def bind_sim_clock(
        self, clock: Optional[Callable[[], float]]
    ) -> Optional[Callable[[], float]]:
        """Install a simulated-time source; returns the previous one.

        Spans opened while a clock is bound record ``sim_ms`` alongside
        wall time.  Callers restore the returned previous clock when
        their scope ends (the campaign runner does this in a finally).
        """
        previous = self._sim_clock
        self._sim_clock = clock
        return previous

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = (name, label_key(labels))
        with self._lock:
            self.touches += 1
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = (name, label_key(labels))
        with self._lock:
            self.touches += 1
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        key = (name, label_key(labels))
        with self._lock:
            self.touches += 1
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(buckets)
            histogram.observe(value)

    def event(
        self, name: str, *, sim_ms: Optional[float] = None, **labels: Any
    ) -> None:
        """A point occurrence: counted, and a trace line when tracing."""
        items = label_key(labels)
        with self._lock:
            self.touches += 1
            key = (name, items)
            self._counters[key] = self._counters.get(key, 0) + 1
            if self.trace is not None:
                # The event line itself carries this occurrence; marking
                # it flushed keeps the counter delta from re-counting it.
                self._flushed_counters[key] = (
                    self._flushed_counters.get(key, 0) + 1
                )
            if sim_ms is None and self._sim_clock is not None:
                sim_ms = self._sim_clock()
        if self.trace is not None:
            record: Dict[str, Any] = {"type": "event", "name": name}
            if labels:
                record["labels"] = dict(items)
            if sim_ms is not None:
                record["sim_ms"] = round(sim_ms, 6)
            if self.context is not None:
                record["ctx"] = self.context
                record["t_s"] = round(time.time(), 6)
            self.trace.write(record)

    def span(self, name: str, **labels: Any) -> Span:
        return Span(self, name, label_key(labels))

    def _enter_span(self) -> Tuple[str, Optional[str]]:
        """Allocate a span id and resolve its parent (context mode only).

        Parents come from a per-thread stack of open spans, so nested
        spans on one thread form a tree; a thread's outermost span
        adopts :attr:`parent_span` (the collector's campaign root).
        """
        stack = getattr(self._span_stack, "ids", None)
        if stack is None:
            stack = self._span_stack.ids = []
        with self._lock:
            self._span_seq += 1
            span_id = f"s{self._span_seq}"
        parent = stack[-1] if stack else self.parent_span
        stack.append(span_id)
        return span_id, parent

    def _record_span(
        self,
        name: str,
        labels: LabelItems,
        wall_ms: float,
        sim_ms: Optional[float],
        *,
        span_id: Optional[str] = None,
        parent: Optional[str] = None,
        t0_s: Optional[float] = None,
    ) -> None:
        if span_id is not None:
            stack = getattr(self._span_stack, "ids", None)
            if stack and stack[-1] == span_id:
                stack.pop()
        with self._lock:
            self.touches += 1
            stats = self._spans.get(name)
            if stats is None:
                stats = self._spans[name] = {
                    "count": 0,
                    "total_ms": 0.0,
                    "max_ms": 0.0,
                    "total_sim_ms": 0.0,
                }
            stats["count"] += 1
            stats["total_ms"] += wall_ms
            if wall_ms > stats["max_ms"]:
                stats["max_ms"] = wall_ms
            if sim_ms is not None:
                stats["total_sim_ms"] += sim_ms
        if self.trace is not None:
            record: Dict[str, Any] = {
                "type": "span",
                "name": name,
                "ms": round(wall_ms, 6),
            }
            if labels:
                record["labels"] = dict(labels)
            if sim_ms is not None:
                record["sim_ms"] = round(sim_ms, 6)
            if span_id is not None:
                record["span_id"] = span_id
                if parent is not None:
                    record["parent"] = parent
                if t0_s is not None:
                    record["t0_s"] = round(t0_s, 6)
            if self.context is not None:
                record["ctx"] = self.context
            self.trace.write(record)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything recorded so far, as one JSON-able dict."""
        with self._lock:
            return {
                "counters": {
                    f"{name}{label_text(items)}": value
                    for (name, items), value in sorted(self._counters.items())
                },
                "gauges": {
                    f"{name}{label_text(items)}": value
                    for (name, items), value in sorted(self._gauges.items())
                },
                "histograms": {
                    f"{name}{label_text(items)}": histogram.as_dict()
                    for (name, items), histogram in sorted(
                        self._histograms.items()
                    )
                },
                "spans": {
                    name: dict(stats)
                    for name, stats in sorted(self._spans.items())
                },
            }

    def summary(self) -> Dict[str, Any]:
        """A compact roll-up (per-name totals, labels folded away).

        This is what the bench runner stores into ``BENCH_HISTORY``
        records: small, stable keys, no per-run label cardinality.
        """
        with self._lock:
            counters: Dict[str, float] = {}
            for (name, _items), value in self._counters.items():
                counters[name] = counters.get(name, 0) + value
            spans = {
                name: {
                    "count": stats["count"],
                    "total_ms": round(stats["total_ms"], 3),
                }
                for name, stats in sorted(self._spans.items())
            }
            return {
                "counters": {k: counters[k] for k in sorted(counters)},
                "spans": spans,
                "touches": self.touches,
            }

    def flush(self) -> None:
        """Write counter/gauge/histogram state to the trace as deltas.

        Counter and histogram lines carry the change since the previous
        flush, so an aggregator sums lines without double counting;
        gauges carry current values.  No-op without a trace sink.
        """
        if self.trace is None:
            return
        with self._lock:
            counter_lines = []
            for (name, items), value in sorted(self._counters.items()):
                delta = value - self._flushed_counters.get((name, items), 0)
                if delta:
                    counter_lines.append((name, items, delta))
                self._flushed_counters[(name, items)] = value
            gauge_lines = [
                (name, items, value)
                for (name, items), value in sorted(self._gauges.items())
            ]
            hist_lines = []
            for (name, items), histogram in sorted(self._histograms.items()):
                seen = self._flushed_hist_counts.get(
                    (name, items), [0] * len(histogram.counts)
                )
                delta_counts = [
                    now - before for now, before in zip(histogram.counts, seen)
                ]
                if any(delta_counts):
                    hist_lines.append(
                        (name, items, histogram.edges, delta_counts)
                    )
                self._flushed_hist_counts[(name, items)] = list(
                    histogram.counts
                )
        for name, items, delta in counter_lines:
            record: Dict[str, Any] = {
                "type": "counter",
                "name": name,
                "value": delta,
            }
            if items:
                record["labels"] = dict(items)
            if self.context is not None:
                record["ctx"] = self.context
            self.trace.write(record)
        for name, items, value in gauge_lines:
            record = {"type": "gauge", "name": name, "value": value}
            if items:
                record["labels"] = dict(items)
            if self.context is not None:
                record["ctx"] = self.context
            self.trace.write(record)
        for name, items, edges, delta_counts in hist_lines:
            record = {
                "type": "hist",
                "name": name,
                "edges": list(edges),
                "counts": delta_counts,
            }
            if items:
                record["labels"] = dict(items)
            if self.context is not None:
                record["ctx"] = self.context
            self.trace.write(record)
        self.trace.flush()

    def close(self) -> None:
        """Flush pending deltas and close the trace sink (if any)."""
        self.flush()
        if self.trace is not None:
            self.trace.close()
