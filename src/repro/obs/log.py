"""The ``repro`` logger: diagnostics on stderr, never stdout.

Library modules get a namespaced child logger from :func:`get_logger`
and log through it instead of ad-hoc ``print()`` calls; the CLI calls
:func:`configure_logging` once (driven by the global ``--log-level``
flag or ``REPRO_LOG_LEVEL``) so every diagnostic lands on *stderr* with
one consistent format, keeping piped stdout output — tables, JSON rows
— machine-clean.

Unconfigured library use still surfaces warnings: the ``repro`` logger
propagates to the root logger until :func:`configure_logging` attaches
its own handler, at which point propagation is cut so messages are
never duplicated.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

from ..errors import ConfigurationError

#: Root of the repro logger namespace.
LOGGER_NAME = "repro"

#: Environment default for the CLI's --log-level flag.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Valid --log-level values (case-insensitive).
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or a dotted child (``repro.<name>``)."""
    if name:
        return logging.getLogger(f"{LOGGER_NAME}.{name}")
    return logging.getLogger(LOGGER_NAME)


class _CurrentStderr:
    """A stream proxy resolving ``sys.stderr`` at write time.

    ``logging.StreamHandler`` captures its stream once at construction;
    resolving lazily instead keeps log output visible to anything that
    swaps ``sys.stderr`` later (pytest capture, CLI redirection).
    """

    def write(self, text: str) -> int:
        return sys.stderr.write(text)

    def flush(self) -> None:
        sys.stderr.flush()


def configure_logging(level: Optional[str] = None) -> logging.Logger:
    """Attach the stderr handler and set the level (idempotent).

    ``level`` falls back to ``$REPRO_LOG_LEVEL`` and then ``"info"``.
    Re-invoking only adjusts the level — handlers are never duplicated.
    """
    chosen = (level or os.environ.get(LOG_LEVEL_ENV) or "info").strip().lower()
    if chosen not in LOG_LEVELS:
        raise ConfigurationError(
            f"unknown log level {chosen!r}; valid: {', '.join(LOG_LEVELS)}"
        )
    logger = get_logger()
    if not any(
        getattr(handler, "_repro_handler", False)
        for handler in logger.handlers
    ):
        handler = logging.StreamHandler(_CurrentStderr())
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        handler._repro_handler = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(getattr(logging, chosen.upper()))
    return logger
