"""Declarative SLO and regression watchdogs: ``repro obs watch``.

Two rule tables, both data, both renderable:

* :class:`SloRule` — a threshold on one metric of an **analyzed
  campaign trace** (``repro obs analyze`` metrics: ``coverage``,
  ``phase.schedule.p99_ms``, ...).  A missing metric is itself a
  breach — losing the measurement is how an SLO quietly dies.
* :class:`RegressionRule` — a step-change detector on one tracked
  metric's **``BENCH_HISTORY.jsonl`` trajectory** (``csr.
  scale_free_200.speedup``, ``obs.off_overhead_pct``, ...).  The
  newest full (non-smoke) value is compared against the trailing
  median of the preceding window; drifting past the tolerance in the
  bad direction trips the rule.  Too few points means *skipped*, not
  passed — the report says so.

``repro obs watch`` evaluates whichever inputs it is given (a merged
trace, a history file, or both) and exits non-zero on any breach;
``repro bench verify --watch`` runs the regression table after the
floor gate, so a slow slide that never crosses a floor still fails
loudly.  Rules are deliberately tiny data objects: projects grow the
tables, not the engine.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Comparison operators an SLO rule may use.
_OPS = ("<=", ">=")


@dataclass(frozen=True)
class SloRule:
    """``metric op limit`` over one analyzed campaign trace."""

    name: str
    metric: str
    limit: float
    op: str = "<="
    doc: str = ""

    def describe(self) -> str:
        return f"{self.metric} {self.op} {self.limit:g}"


@dataclass(frozen=True)
class RegressionRule:
    """Trailing-median drift on one ``BENCH_HISTORY`` metric.

    ``metric`` is ``<suite>.<dotted.path>``; the newest full record's
    value is compared against the median of up to ``window`` preceding
    values (at least ``min_points`` total values must exist, else the
    rule is skipped and reported as such).  ``higher_is_better`` picks
    the bad direction; ``tolerance_pct`` is how far past the median the
    newest value may drift before the rule trips.
    """

    name: str
    metric: str
    higher_is_better: bool = True
    tolerance_pct: float = 30.0
    window: int = 5
    min_points: int = 3
    doc: str = ""

    def describe(self) -> str:
        direction = "drop" if self.higher_is_better else "rise"
        return (
            f"{self.metric}: newest may not {direction} >"
            f"{self.tolerance_pct:g}% vs trailing median"
        )


@dataclass(frozen=True)
class Breach:
    """One tripped rule, with the evidence."""

    rule: str
    kind: str  # "slo" | "regression"
    metric: str
    value: Optional[float]
    reference: Optional[float]
    reason: str


@dataclass(frozen=True)
class WatchResult:
    breaches: List[Breach]
    checked: List[str]
    skipped: List[str]

    @property
    def ok(self) -> bool:
        return not self.breaches


#: Default SLOs over a merged campaign trace.
DEFAULT_SLO_RULES: List[SloRule] = [
    SloRule(
        "trace-runs", "runs", 1.0, op=">=",
        doc="the merged trace contains at least one collected run",
    ),
    SloRule(
        "trace-coverage", "coverage", 1.0, op=">=",
        doc="every executed run's spans reached the merged trace",
    ),
]

#: Default regression rules over the BENCH_HISTORY trajectory — the
#: tracked headline metrics.  Tolerances sit well above run-to-run
#: jitter (see BASELINES.md) so only step changes trip.
DEFAULT_REGRESSION_RULES: List[RegressionRule] = [
    RegressionRule(
        "csr-speedup", "csr.scale_free_200.speedup",
        higher_is_better=True, tolerance_pct=40.0,
        doc="CSR kernel speedup over the cached object path at N=200",
    ),
    RegressionRule(
        "scheduler-cache-speedup", "scheduler.scale_free_200.speedup",
        higher_is_better=True, tolerance_pct=40.0,
        doc="routing-cache schedule speedup at N=200",
    ),
    RegressionRule(
        "obs-off-overhead", "obs.off_overhead_pct",
        higher_is_better=False, tolerance_pct=100.0,
        doc="telemetry-off guard overhead as % of sweep wall time",
    ),
    RegressionRule(
        "obs-collect-overhead", "obs.collect_overhead_pct",
        higher_is_better=False, tolerance_pct=100.0,
        doc="distributed-collection overhead on socket sweeps",
    ),
    RegressionRule(
        "traces-replay-rate", "traces.replay_runs_per_s",
        higher_is_better=True, tolerance_pct=60.0,
        doc="trace+SRLG campaign replay rate",
    ),
]


def parse_slo_rule(text: str) -> SloRule:
    """``metric<=limit`` / ``metric>=limit`` from the CLI ``--slo``."""
    for op in _OPS:
        if op in text:
            metric, _, raw = text.partition(op)
            metric = metric.strip()
            try:
                limit = float(raw.strip())
            except ValueError:
                raise ConfigurationError(
                    f"bad SLO limit in {text!r}: {raw.strip()!r}"
                ) from None
            if not metric:
                raise ConfigurationError(f"bad SLO rule {text!r}: no metric")
            return SloRule(f"cli:{metric}", metric, limit, op=op)
    raise ConfigurationError(
        f"bad SLO rule {text!r}: expected <metric><=|>=<limit>"
    )


def _as_number(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


def evaluate_slo(
    metrics: Dict[str, Any], rules: Sequence[SloRule]
) -> Tuple[List[Breach], List[str]]:
    """Breaches (+ checked descriptions) of SLO rules on one analysis."""
    breaches: List[Breach] = []
    checked: List[str] = []
    for rule in rules:
        checked.append(f"slo {rule.name}: {rule.describe()}")
        value = _as_number(metrics.get(rule.metric))
        if value is None:
            breaches.append(
                Breach(
                    rule.name, "slo", rule.metric, None, rule.limit,
                    f"metric {rule.metric!r} missing from the analyzed trace",
                )
            )
            continue
        passed = (
            value <= rule.limit if rule.op == "<=" else value >= rule.limit
        )
        if not passed:
            breaches.append(
                Breach(
                    rule.name, "slo", rule.metric, value, rule.limit,
                    f"{rule.metric} = {value:g} violates "
                    f"{rule.op} {rule.limit:g}",
                )
            )
    return breaches, checked


def _metric_series(
    records: Iterable[Dict[str, Any]], metric: str
) -> List[float]:
    """The metric's trajectory over full (non-smoke) history records."""
    from ..bench.registry import metric_at  # deferred: bench imports obs

    suite, _, path = metric.partition(".")
    if not path:
        raise ConfigurationError(
            f"regression metric {metric!r} must be <suite>.<dotted.path>"
        )
    series: List[float] = []
    for record in records:
        if not isinstance(record, dict) or record.get("smoke"):
            continue
        metrics = record.get("suites", {}).get(suite)
        if metrics is None:
            continue
        value = _as_number(metric_at(metrics, path))
        if value is not None:
            series.append(value)
    return series


def evaluate_regressions(
    records: Sequence[Dict[str, Any]],
    rules: Sequence[RegressionRule],
) -> Tuple[List[Breach], List[str], List[str]]:
    """Breaches / checked / skipped for regression rules on a history."""
    breaches: List[Breach] = []
    checked: List[str] = []
    skipped: List[str] = []
    for rule in rules:
        series = _metric_series(records, rule.metric)
        if len(series) < max(2, rule.min_points):
            skipped.append(
                f"regression {rule.name}: {len(series)} point(s) < "
                f"{max(2, rule.min_points)} needed"
            )
            continue
        newest = series[-1]
        trailing = series[max(0, len(series) - 1 - rule.window):-1]
        baseline = statistics.median(trailing)
        checked.append(
            f"regression {rule.name}: {rule.metric} newest {newest:g} "
            f"vs median {baseline:g} (n={len(trailing)})"
        )
        if baseline == 0:
            continue
        drift_pct = (newest - baseline) / abs(baseline) * 100.0
        bad = (
            drift_pct < -rule.tolerance_pct
            if rule.higher_is_better
            else drift_pct > rule.tolerance_pct
        )
        if bad:
            breaches.append(
                Breach(
                    rule.name, "regression", rule.metric, newest, baseline,
                    f"{rule.metric} stepped from median {baseline:g} to "
                    f"{newest:g} ({drift_pct:+.1f}%, tolerance "
                    f"±{rule.tolerance_pct:g}%)",
                )
            )
    return breaches, checked, skipped


def watch(
    *,
    trace: Optional[str] = None,
    history: Optional[str] = None,
    slo_rules: Optional[Sequence[SloRule]] = None,
    regression_rules: Optional[Sequence[RegressionRule]] = None,
) -> WatchResult:
    """Evaluate every applicable rule; at least one input is required."""
    if trace is None and history is None:
        raise ConfigurationError(
            "obs watch needs a merged trace (--trace) and/or a bench "
            "history (--history)"
        )
    breaches: List[Breach] = []
    checked: List[str] = []
    skipped: List[str] = []
    if trace is not None:
        from .analyze import analyze  # deferred: avoid import at startup

        analysis = analyze(trace)
        slo = DEFAULT_SLO_RULES if slo_rules is None else list(slo_rules)
        slo_breaches, slo_checked = evaluate_slo(analysis["metrics"], slo)
        breaches.extend(slo_breaches)
        checked.extend(slo_checked)
    if history is not None:
        from ..bench.history import read_history  # deferred: bench imports obs

        records = read_history(history)
        rules = (
            DEFAULT_REGRESSION_RULES
            if regression_rules is None
            else list(regression_rules)
        )
        reg_breaches, reg_checked, reg_skipped = evaluate_regressions(
            records, rules
        )
        breaches.extend(reg_breaches)
        checked.extend(reg_checked)
        skipped.extend(reg_skipped)
    return WatchResult(breaches=breaches, checked=checked, skipped=skipped)


def render_watch(result: WatchResult) -> str:
    """The ``repro obs watch`` report (breaches first, then the audit)."""
    lines: List[str] = []
    if result.breaches:
        lines.append(f"WATCHDOG BREACHES ({len(result.breaches)}):")
        for breach in result.breaches:
            lines.append(f"  [{breach.kind}] {breach.rule}: {breach.reason}")
    else:
        lines.append("watchdogs green")
    if result.checked:
        lines.append("")
        lines.append(f"checked ({len(result.checked)}):")
        lines.extend(f"  {entry}" for entry in result.checked)
    if result.skipped:
        lines.append("")
        lines.append(f"skipped ({len(result.skipped)}):")
        lines.extend(f"  {entry}" for entry in result.skipped)
    return "\n".join(lines)
