"""Distributed trace collection: one campaign trace from many workers.

Process-local telemetry (PR 7) fragments the moment a sweep fans out:
each ``SocketQueueBackend`` worker writes its own trace with no shared
context.  This module closes that gap with three pieces:

* :class:`TraceContext` — the ``(campaign_id, run_key, parent_span_id)``
  stamp a coordinator attaches to every dispatched run.  It travels as
  plain JSON on the existing wire protocol (the ``ctx`` field of a
  ``run`` message), preserving the never-unpickle rule — nothing about
  collection adds a pickle boundary.
* :func:`collect_run` — the worker-side capture scope: executes one run
  under a fresh per-thread :class:`~repro.obs.registry.Telemetry`
  (installed via :func:`repro.obs.thread_session`, so a process-global
  session and concurrent in-process workers are unaffected) buffering
  into a :class:`~repro.obs.trace.MemorySink`, and returns the records
  as a JSON chunk bracketed by two wall-clock samples.
* :class:`TraceCollector` — the coordinator side: hands out contexts,
  merges returned chunks into one rotation-aware campaign trace, and
  normalises per-worker clock skew.  The offset estimate is the
  NTP-style midpoint over the dispatch/result exchange::

      offset = ((wall0 - request_s) + (wall1 - response_s)) / 2

  where ``request_s``/``response_s`` are coordinator clock samples
  around the exchange and ``wall0``/``wall1`` the worker's samples
  around the run.  Worker epoch stamps (``t0_s``/``t_s``) are shifted
  by ``-offset`` onto the coordinator clock; simulated timestamps and
  durations need no correction and are **never touched**, so sim-time
  telemetry stays byte-identical to a local run.

Collection is strictly out-of-band, same bar as the rest of ``obs``:
result rows and result sinks are byte-identical with collection on or
off, across every backend.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .registry import Telemetry
from .trace import TRACE_SCHEMA, MemorySink, TraceSink

#: Per-chunk record cap — a runaway (or hostile) worker cannot balloon
#: the merged trace; overflow is counted, not silently dropped.
MAX_CHUNK_RECORDS = 20_000

#: The campaign root span id every run context points at.
ROOT_SPAN_ID = "c0"


@dataclass(frozen=True)
class TraceContext:
    """The collection context one dispatched run carries.

    ``campaign`` names the merged trace, ``run`` is the
    :meth:`~repro.scenarios.sweep.engine.RunKey.token` the chunk is
    filed under, ``scenario``/``seed`` ride along so merged records are
    self-describing, and ``parent_span`` links worker root spans under
    the collector's campaign span.
    """

    campaign: str
    run: str
    scenario: str
    seed: int
    parent_span: str = ROOT_SPAN_ID

    def stamp(self) -> Dict[str, Any]:
        """The ``ctx`` dict stamped onto every captured trace record."""
        return {
            "campaign": self.campaign,
            "run": self.run,
            "scenario": self.scenario,
            "seed": self.seed,
        }

    def as_wire(self) -> Dict[str, Any]:
        """Plain-JSON form for the socket protocol (never pickled)."""
        return {
            "campaign": self.campaign,
            "run": self.run,
            "scenario": self.scenario,
            "seed": self.seed,
            "parent_span": self.parent_span,
        }

    @classmethod
    def from_wire(cls, payload: Any) -> "TraceContext":
        """Validate and rebuild a context from untrusted wire JSON."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"trace context must be a mapping, got {type(payload).__name__}"
            )
        campaign = payload.get("campaign")
        run = payload.get("run")
        scenario = payload.get("scenario")
        seed = payload.get("seed")
        parent = payload.get("parent_span", ROOT_SPAN_ID)
        if not all(isinstance(v, str) and v for v in (campaign, run, scenario)):
            raise ConfigurationError(
                "trace context needs non-empty campaign/run/scenario strings"
            )
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ConfigurationError("trace context seed must be an int")
        if not isinstance(parent, str) or not parent:
            raise ConfigurationError(
                "trace context parent_span must be a non-empty string"
            )
        return cls(campaign, run, scenario, seed, parent)


def collect_run(
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    *,
    context: TraceContext,
    worker: str,
) -> Tuple[Any, Dict[str, Any]]:
    """Execute ``fn(*args)`` under a capture registry; return a chunk.

    A fresh :class:`Telemetry` with a :class:`MemorySink` is installed
    for this thread only (:func:`repro.obs.thread_session`), so all
    facade instrumentation inside the run — engine spans, scheduler
    counters, sim-clock bindings — lands in the buffer with the
    context's ``ctx`` stamp, regardless of what the process-global
    session is doing.  The returned chunk is plain JSON::

        {"worker": ..., "run": ..., "wall0_s": ..., "wall1_s": ...,
         "records": [...]}

    ``wall0_s``/``wall1_s`` bracket the run on the worker's clock and
    feed the collector's skew estimate.
    """
    from . import thread_session  # deferred: repro.obs imports this module

    sink = MemorySink()
    registry = Telemetry(
        trace=sink, context=context.stamp(), parent_span=context.parent_span
    )
    wall0 = time.time()
    try:
        with thread_session(registry):
            with registry.span("run", worker=worker):
                result = fn(*args)
    finally:
        registry.close()  # flush counter/gauge/hist deltas into the buffer
    wall1 = time.time()
    chunk = {
        "worker": worker,
        "run": context.run,
        "wall0_s": round(wall0, 6),
        "wall1_s": round(wall1, 6),
        "records": sink.records,
    }
    return result, chunk


def _as_number(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None


class TraceCollector:
    """Coordinator-side merge of per-run trace chunks (thread-safe).

    One collector serves one campaign: it mints the campaign id, hands
    out :class:`TraceContext` stamps (:meth:`context_for`), folds every
    returned chunk into a single rotation-aware trace
    (:meth:`add_chunk` — skew-normalised, worker-stamped, bracketed by
    ``collect.dispatch``/``collect.result`` events), records coordinator
    phases (:meth:`on_drain`, :meth:`on_requeue`), and finishes with
    summary gauges plus the campaign root span (:meth:`close`).

    Args:
        trace: the merged trace — a path (a rotating
            :class:`TraceSink` is created and owned) or a ready sink
            (borrowed; the caller closes it).
        sweep: sweep name folded into the generated campaign id.
        campaign: explicit campaign id (tests); default is generated
            from the sweep name, pid, and wall clock.
    """

    def __init__(
        self,
        trace: Union[str, TraceSink, MemorySink],
        *,
        sweep: str = "sweep",
        campaign: Optional[str] = None,
    ) -> None:
        if isinstance(trace, str):
            self.sink: Any = TraceSink(trace)
            self._owns_sink = True
        else:
            self.sink = trace
            self._owns_sink = False
        self._t0 = time.time()
        self.campaign = campaign or (
            f"{sweep}-{os.getpid()}-{int(self._t0 * 1000) & 0xFFFFFFFF:08x}"
        )
        self.root_span = ROOT_SPAN_ID
        self._lock = threading.Lock()
        self._closed = False
        self.stats: Dict[str, float] = {
            "chunks": 0,
            "records": 0,
            "dropped": 0,
            "requeues": 0,
            "max_abs_skew_ms": 0.0,
        }
        self._workers: set = set()
        self.sink.write(
            {
                "type": "meta",
                "schema": TRACE_SCHEMA,
                "collect": True,
                "campaign": self.campaign,
                "pid": os.getpid(),
                "wall_s": round(self._t0, 6),
            }
        )

    # -- context hand-out --------------------------------------------------

    def context_for(self, key: Any) -> TraceContext:
        """The :class:`TraceContext` for one run key (duck-typed:
        anything with ``token()``, ``scenario``, and ``seed``)."""
        return TraceContext(
            campaign=self.campaign,
            run=key.token(),
            scenario=key.scenario,
            seed=key.seed,
            parent_span=self.root_span,
        )

    def _ctx(self, run: Optional[str]) -> Dict[str, Any]:
        ctx: Dict[str, Any] = {"campaign": self.campaign}
        if run:
            ctx["run"] = run
        return ctx

    # -- chunk merging -----------------------------------------------------

    def add_chunk(
        self,
        chunk: Any,
        *,
        request_s: Optional[float] = None,
        response_s: Optional[float] = None,
    ) -> None:
        """Merge one worker chunk into the campaign trace.

        ``request_s``/``response_s`` are coordinator clock samples
        taken around the dispatch/result exchange; when present (socket
        and serial paths) they produce the skew offset applied to the
        chunk's wall-epoch stamps and a ``collect.dispatch`` /
        ``collect.result`` event pair the analyzer turns into queue
        wait.  Malformed chunks are counted as drops, never raised —
        a misbehaving worker must not kill the campaign.
        """
        if not isinstance(chunk, Mapping):
            with self._lock:
                self.stats["dropped"] += 1
            return
        records = chunk.get("records")
        if not isinstance(records, list):
            records = []
        worker = chunk.get("worker")
        worker = worker if isinstance(worker, str) and worker else "?"
        run = chunk.get("run")
        run = run if isinstance(run, str) else None
        wall0 = _as_number(chunk.get("wall0_s"))
        wall1 = _as_number(chunk.get("wall1_s"))
        offset = 0.0
        if (
            request_s is not None
            and response_s is not None
            and wall0 is not None
            and wall1 is not None
        ):
            offset = ((wall0 - request_s) + (wall1 - response_s)) / 2.0
        overflow = max(0, len(records) - MAX_CHUNK_RECORDS)
        kept = records[:MAX_CHUNK_RECORDS]
        with self._lock:
            self.stats["chunks"] += 1
            self._workers.add(worker)
            skew_ms = abs(offset) * 1000.0
            if skew_ms > self.stats["max_abs_skew_ms"]:
                self.stats["max_abs_skew_ms"] = skew_ms
            self.stats["dropped"] += overflow
        if request_s is not None:
            self.sink.write(
                {
                    "type": "event",
                    "name": "collect.dispatch",
                    "t_s": round(request_s, 6),
                    "worker": worker,
                    "ctx": self._ctx(run),
                }
            )
        written = 0
        for record in kept:
            if not isinstance(record, dict):
                with self._lock:
                    self.stats["dropped"] += 1
                continue
            out = dict(record)
            out["worker"] = worker
            if offset:
                for field in ("t0_s", "t_s"):
                    stamp = _as_number(out.get(field))
                    if stamp is not None:
                        out[field] = round(stamp - offset, 6)
            self.sink.write(out)
            written += 1
        if response_s is not None:
            self.sink.write(
                {
                    "type": "event",
                    "name": "collect.result",
                    "t_s": round(response_s, 6),
                    "worker": worker,
                    "skew_ms": round(offset * 1000.0, 3),
                    "ctx": self._ctx(run),
                }
            )
        with self._lock:
            self.stats["records"] += written

    # -- coordinator-side phases -------------------------------------------

    def on_requeue(self, key: Any, worker: str) -> None:
        """A checked-out run bounced back to the queue (worker died)."""
        with self._lock:
            self.stats["requeues"] += 1
        self.sink.write(
            {
                "type": "event",
                "name": "collect.requeue",
                "t_s": round(time.time(), 6),
                "worker": worker,
                "ctx": self._ctx(key.token()),
            }
        )

    def on_drain(self, key: Any, wall_ms: float) -> None:
        """The coordinator-side drain (sink/cache write) of one run."""
        self.sink.write(
            {
                "type": "span",
                "name": "run.drain",
                "ms": round(wall_ms, 6),
                "t0_s": round(time.time() - wall_ms / 1000.0, 6),
                "parent": self.root_span,
                "worker": "coordinator",
                "ctx": {
                    "campaign": self.campaign,
                    "run": key.token(),
                    "scenario": key.scenario,
                    "seed": key.seed,
                },
            }
        )

    # -- lifecycle ---------------------------------------------------------

    def finish(self, **gauges: float) -> None:
        """Record campaign summary gauges (``collect.<name>``)."""
        merged = dict(self.stats)
        merged["workers"] = len(self._workers)
        merged.update(gauges)
        for name in sorted(merged):
            self.sink.write(
                {
                    "type": "gauge",
                    "name": f"collect.{name}",
                    "value": merged[name],
                    "ctx": self._ctx(None),
                }
            )

    def close(self) -> None:
        """Write the campaign root span and release an owned sink."""
        if self._closed:
            return
        self._closed = True
        now = time.time()
        self.sink.write(
            {
                "type": "span",
                "name": "campaign",
                "span_id": self.root_span,
                "ms": round((now - self._t0) * 1000.0, 6),
                "t0_s": round(self._t0, 6),
                "worker": "coordinator",
                "ctx": self._ctx(None),
            }
        )
        if self._owns_sink:
            self.sink.close()
        else:
            self.sink.flush()
