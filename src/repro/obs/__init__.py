"""``repro.obs``: out-of-band telemetry — counters, spans, trace export.

The sweep engine, the schedulers, the routing kernel, the distributed
coordinator, and the fault injector are all instrumented through this
facade.  Telemetry is **off by default** and strictly out-of-band:
result rows, golden files, and result-sink contents are byte-identical
whether it is on, off, or never imported, and the disabled path is a
near-zero-cost no-op — each instrumentation site costs one function
call that checks a single module attribute and returns::

    from repro import obs

    with obs.session(trace="trace.jsonl"):          # enable + TraceSink
        result = run_sweep(config)                   # spans/counters flow
    # disabled again; the trace file holds the telemetry

    print(obs.report("trace.jsonl"))                 # aggregate it

Hot-path usage (what the instrumented modules do)::

    with obs.span("run.schedule", scheduler=name):   # no-op when off
        ...
    obs.inc("pathcache.hits", delta)                 # no-op when off

The active :class:`Telemetry` registry is process-local; forked worker
processes start with telemetry disabled (an ``os.register_at_fork``
guard) so a shared trace file is never written from two processes.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from ..errors import ConfigurationError
from .log import (
    LOG_LEVEL_ENV,
    LOG_LEVELS,
    configure_logging,
    get_logger,
)
from .registry import DEFAULT_BUCKETS, Histogram, Span, Telemetry
from .report import aggregate_trace, format_record, render_summary, report
from .trace import MemorySink, TraceSink, follow_trace, iter_trace, trace_files

__all__ = [
    "Telemetry",
    "TraceSink",
    "MemorySink",
    "Histogram",
    "Span",
    "DEFAULT_BUCKETS",
    "active",
    "enable",
    "disable",
    "session",
    "enabled",
    "disabled",
    "thread_session",
    "span",
    "inc",
    "gauge",
    "observe",
    "event",
    "observe_network",
    "aggregate_trace",
    "render_summary",
    "report",
    "format_record",
    "iter_trace",
    "follow_trace",
    "trace_files",
    "collect_run",
    "TraceCollector",
    "TraceContext",
    "get_logger",
    "configure_logging",
    "LOG_LEVELS",
    "LOG_LEVEL_ENV",
]

#: The active registry — ``None`` means telemetry is off.  Every no-op
#: guard below is exactly one check of this attribute (plus one
#: thread-local read for the per-thread capture override).
_active: Optional[Telemetry] = None


class _ThreadState(threading.local):
    """Per-thread registry override (distributed trace capture)."""

    registry: Optional[Telemetry] = None


_tls = _ThreadState()


def active() -> Optional[Telemetry]:
    """The active :class:`Telemetry` registry, or ``None`` when off.

    A per-thread capture registry (:func:`thread_session` — how
    :func:`repro.obs.collect.collect_run` isolates one run's records)
    shadows the process-global one on its thread only.
    """
    return _tls.registry or _active


def enable(
    trace: Union[str, TraceSink, None] = None,
    *,
    registry: Optional[Telemetry] = None,
) -> Telemetry:
    """Turn telemetry on for this process.

    Args:
        trace: a path (a rotating :class:`TraceSink` is created) or a
            ready sink; ``None`` keeps telemetry in-memory only.
        registry: adopt an existing registry instead of a fresh one
            (``trace`` must then be ``None`` — the registry owns its
            sink).

    Raises:
        ConfigurationError: when telemetry is already enabled — an
            accidental double-enable would silently drop a trace.  Use
            :func:`enabled` for nested scopes.
    """
    global _active
    if _active is not None:
        raise ConfigurationError(
            "telemetry is already enabled; disable() it first or use the "
            "obs.enabled() context manager for nested scopes"
        )
    if registry is not None:
        if trace is not None:
            raise ConfigurationError(
                "pass trace or registry, not both — the registry already "
                "owns its trace sink"
            )
        _active = registry
    else:
        sink = TraceSink(trace) if isinstance(trace, str) else trace
        _active = Telemetry(trace=sink)
    return _active


def disable() -> Optional[Telemetry]:
    """Turn telemetry off; flushes and closes the trace.  Idempotent.

    Returns the registry that was active (its aggregates remain
    readable after disable), or ``None`` if telemetry was already off.
    """
    global _active
    registry, _active = _active, None
    if registry is not None:
        registry.close()
    return registry


@contextmanager
def session(
    trace: Union[str, TraceSink, None] = None
) -> Iterator[Telemetry]:
    """``enable()`` on entry, ``disable()`` on exit (exception-safe)."""
    registry = enable(trace)
    try:
        yield registry
    finally:
        if _active is registry:
            disable()


@contextmanager
def enabled(
    trace: Union[str, TraceSink, None] = None
) -> Iterator[Telemetry]:
    """A nest-safe telemetry scope: stash the current registry, install
    a fresh one, restore on exit.  Used where telemetry may already be
    on (the bench runner, the overhead benchmark)."""
    global _active
    previous = _active
    _active = None
    registry = enable(trace)
    try:
        yield registry
    finally:
        if _active is registry:
            registry.close()
        _active = previous


@contextmanager
def disabled() -> Iterator[None]:
    """Force telemetry off inside the scope, restoring it after.

    Clears both the process-global registry and this thread's capture
    override — inside the scope every facade call is a true no-op.
    """
    global _active
    previous, _active = _active, None
    previous_tls, _tls.registry = _tls.registry, None
    try:
        yield
    finally:
        _active = previous
        _tls.registry = previous_tls


@contextmanager
def thread_session(registry: Telemetry) -> Iterator[Telemetry]:
    """Install ``registry`` for the *current thread only*.

    The distributed-collection capture scope: while active, facade
    calls and :func:`active` on this thread route to ``registry``
    (shadowing any process-global session), other threads are
    untouched, and the previous override is restored on exit.  Unlike
    :func:`session` the registry is **not** closed on exit — the caller
    owns it and typically drains its :class:`MemorySink` afterwards.
    """
    previous = _tls.registry
    _tls.registry = registry
    try:
        yield registry
    finally:
        _tls.registry = previous


# ---------------------------------------------------------------------------
# The no-op-when-off facade
# ---------------------------------------------------------------------------

class _NullSpan:
    """The shared do-nothing span returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **labels: Any) -> Union[Span, _NullSpan]:
    """A timed region; the shared no-op span while telemetry is off."""
    registry = _tls.registry or _active
    if registry is None:
        return _NULL_SPAN
    return registry.span(name, **labels)


def inc(name: str, value: float = 1, **labels: Any) -> None:
    registry = _tls.registry or _active
    if registry is not None:
        registry.inc(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    registry = _tls.registry or _active
    if registry is not None:
        registry.gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    registry = _tls.registry or _active
    if registry is not None:
        registry.observe(name, value, **labels)


def event(name: str, *, sim_ms: Optional[float] = None, **labels: Any) -> None:
    registry = _tls.registry or _active
    if registry is not None:
        registry.event(name, sim_ms=sim_ms, **labels)


# ---------------------------------------------------------------------------
# Reservation-pressure measurement
# ---------------------------------------------------------------------------

def observe_network(network: Any, *, top: int = 5, **labels: Any) -> None:
    """Record per-link reservation pressure for one network snapshot.

    For every live link the *peak-direction* utilisation (reserved /
    capacity, the hotter of the two directions) feeds the
    ``link.utilization`` histogram; summary gauges capture the max and
    mean, ``net.saturated_links`` counts links above 95%, and the
    ``top`` hottest links get individual ``link.pressure`` gauges keyed
    by endpoint pair — the hotspot-congestion measurement for
    scale-free hubs.  No-op while telemetry is off.
    """
    registry = _tls.registry or _active
    if registry is None:
        return
    pressures = []
    for link in network.links():
        if link.failed:
            continue
        capacity = link.capacity_gbps
        forward = 1.0 - link.residual_gbps(link.u, link.v) / capacity
        backward = 1.0 - link.residual_gbps(link.v, link.u) / capacity
        pressures.append((max(forward, backward), f"{link.u}-{link.v}"))
    if not pressures:
        return
    values = [pressure for pressure, _name in pressures]
    for value in values:
        registry.observe(
            "link.utilization",
            value,
            buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
            **labels,
        )
    registry.gauge("net.max_link_utilization", round(max(values), 6), **labels)
    registry.gauge(
        "net.mean_link_utilization",
        round(sum(values) / len(values), 6),
        **labels,
    )
    registry.gauge(
        "net.saturated_links",
        sum(1 for value in values if value > 0.95),
        **labels,
    )
    pressures.sort(key=lambda item: (-item[0], item[1]))
    for pressure, name in pressures[: max(0, top)]:
        if pressure > 0:
            registry.gauge("link.pressure", round(pressure, 6), link=name)


def _disable_after_fork() -> None:
    """Children of an instrumented process must not share the trace."""
    global _active
    _active = None
    _tls.registry = None


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_disable_after_fork)


# Collection imports last: repro.obs.collect uses the facade above
# (``thread_session``) via a deferred import, but its public names are
# part of the obs surface.
from .collect import TraceCollector, TraceContext, collect_run  # noqa: E402
