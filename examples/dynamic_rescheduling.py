#!/usr/bin/env python
"""Dynamic scenario: tasks and live traffic churn; the orchestrator
re-schedules when the saving outweighs the interruption (challenge #1).

The discrete-event engine drives three phases:

1. heavy background traffic loads the metro ring; tasks arriving now are
   forced onto detours;
2. the background load departs;
3. a re-scheduling pass runs — the policy approves moves whose predicted
   latency/bandwidth saving over the remaining rounds beats the
   interruption cost, and the SDN controller reprograms the paths.

Run:
    python examples/dynamic_rescheduling.py
"""

from repro import (
    FlexibleScheduler,
    Orchestrator,
    RandomStreams,
    ReschedulingPolicy,
    Simulator,
    TrafficGenerator,
    WorkloadConfig,
    generate_workload,
    metro_mesh,
)
from repro.orchestrator.database import TaskStatus
from repro.orchestrator.monitor import NetworkMonitor


def main() -> None:
    network = metro_mesh(n_sites=12, servers_per_site=2)
    streams = RandomStreams(11)
    traffic = TrafficGenerator(network, streams, rate_gbps=15.0)
    orchestrator = Orchestrator(
        network,
        FlexibleScheduler(),
        rescheduling=ReschedulingPolicy(interruption_ms=0.5),
        container_gflops=5_000.0,
    )
    monitor = NetworkMonitor(network, orchestrator.database, period_ms=25.0)
    sim = Simulator()

    # Phase 1 (t=0): heavy background load, then task arrivals.
    traffic.inject_static(30)
    workload = generate_workload(
        network,
        WorkloadConfig(n_tasks=8, n_locals=6, demand_gbps=5.0, rounds=50),
        streams,
    )
    for index, task in enumerate(workload):
        sim.schedule(5.0 + index * 2.0, lambda t=task: orchestrator.admit(t))

    # Phase 2 (t=100): the background load departs.
    sim.schedule(100.0, traffic.clear)

    # Phase 3 (t=120): one re-scheduling pass.
    outcomes = {}
    sim.schedule(120.0, lambda: outcomes.update(orchestrator.reschedule_pass()))

    monitor.start(sim, duration_ms=150.0)
    sim.run()

    running = orchestrator.database.records(TaskStatus.RUNNING)
    moved = [task_id for task_id, done in outcomes.items() if done]
    print(f"tasks running: {len(running)}/{len(workload)}")
    print(f"re-scheduled after load departed: {len(moved)} -> {moved}")
    print(f"SDN reconfigurations performed: {orchestrator.sdn.reconfigurations}")
    bandwidth = sum(
        record.schedule.consumed_bandwidth_gbps
        for record in running
        if record.schedule
    )
    print(f"bandwidth now held by tasks: {bandwidth:.1f} Gbps")
    print("\ntimeline (telemetry, total reserved Gbps):")
    for snapshot in orchestrator.database._snapshots[::2]:
        bar = "#" * int(snapshot.total_used_gbps / 40)
        print(f"  t={snapshot.time_ms:>6.1f} ms  {snapshot.total_used_gbps:>8.1f}  {bar}")
    print("\ndecision log:")
    for time_ms, message in orchestrator.database.events:
        if "reschedule=" in message:
            print(f"  {message[:110]}")


if __name__ == "__main__":
    main()
