"""Walkthrough: out-of-band telemetry with ``repro.obs``.

Run with::

    PYTHONPATH=src python examples/tracing.py

Covers the full surface: enabling a telemetry session around a sweep,
reading the in-memory registry, exporting a rotating JSONL trace,
aggregating it into the ``repro obs report`` tables, proving the
out-of-band guarantee (byte-identical results with telemetry on and
off), and instrumenting your own code with spans, counters, and events.
"""

from __future__ import annotations

import os
import tempfile

from repro import obs
from repro.orchestrator import run_scenario
from repro.scenarios import SweepConfig, run_sweep

SWEEP = SweepConfig(
    scenarios=("toy-triangle",),
    grid={"demand_gbps": [5.0, 10.0]},
    seeds=(0, 1),
)


def in_memory_session() -> None:
    """Telemetry without a trace file: counters and spans in memory."""
    print("== in-memory telemetry session ==")
    with obs.session() as registry:
        run_sweep(SWEEP, workers=1)
    summary = registry.summary()
    print(f"  instrumentation touches: {summary['touches']}")
    for name, value in summary["counters"].items():
        print(f"  counter {name:<22s} {value:g}")
    for name, stats in summary["spans"].items():
        print(
            f"  span    {name:<22s} count={stats['count']} "
            f"total={stats['total_ms']:.1f}ms"
        )
    print()


def traced_session(trace: str) -> None:
    """Export every span/event plus flush deltas to a rotating trace."""
    print("== traced session -> JSONL ==")
    with obs.session(trace=trace):
        run_sweep(SWEEP, workers=1)
        # A campaign binds the simulator clock, so its spans also
        # report *simulated* milliseconds; fault scenarios add events.
        run_scenario("metro-mesh-flaky-links", seed=0)
    lines = sum(1 for _ in obs.iter_trace(trace))
    print(f"  wrote {lines} trace records to {trace}")
    print()

    # The same aggregation the `repro obs report` command renders.
    print(obs.report(trace, span_labels=("scheduler",)))
    print()


def out_of_band_guarantee() -> None:
    """Telemetry can never change results: rows are byte-identical."""
    print("== out-of-band guarantee ==")
    with obs.disabled():
        off = run_sweep(SWEEP, workers=1)
    with obs.enabled():
        on = run_sweep(SWEEP, workers=1)
    assert on.to_json() == off.to_json()
    print("  telemetry on/off rows are byte-identical")
    print()


def instrument_your_own_code() -> None:
    """The facade is no-op when off — instrument freely."""
    print("== instrumenting your own code ==")
    with obs.session() as registry:
        for attempt in range(3):
            with obs.span("example.phase", attempt=attempt):
                obs.inc("example.widgets", 5)
            obs.observe("example.latency_ms", 0.5 * (attempt + 1))
        obs.event("example.done", outcome="ok")
    print(f"  widgets counted: {registry.summary()['counters']}")
    print()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "trace.jsonl")
        in_memory_session()
        traced_session(trace)
        out_of_band_guarantee()
        instrument_your_own_code()
    print("done; try the CLI:  repro scenarios sweep toy-triangle \\")
    print("    --seeds 0,1 --trace trace.jsonl && repro obs report trace.jsonl")


if __name__ == "__main__":
    main()
