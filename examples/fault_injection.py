"""Walkthrough: the resilience subsystem (fault injection end to end).

Run with::

    PYTHONPATH=src python examples/fault_injection.py

Covers the full surface: describing a fault profile, previewing the
deterministic timeline it draws, running a fault-injected campaign,
registering a custom failure-aware scenario, and sweeping fault
intensity with availability metrics streamed to JSONL.
"""

from __future__ import annotations

import json
import tempfile

from repro.network.topologies import metro_ring
from repro.orchestrator import run_scenario
from repro.resilience import FaultProfile, build_timeline
from repro.scenarios import (
    ScenarioSpec,
    SweepConfig,
    get_scenario,
    list_scenarios,
    register,
    run_sweep,
)
from repro.scenarios.workloads import uniform


def browse_fault_aware_scenarios() -> None:
    print("== failure-aware scenarios ==")
    for spec in list_scenarios(tag="resilience"):
        print(f"  {spec.name:<26s} {spec.description}")
    print()


def preview_a_timeline() -> None:
    print("== the deterministic fault timeline ==")
    instance = get_scenario("metro-mesh-flaky-links").instantiate(seed=0)
    timeline = instance.fault_timeline
    print(
        f"  {timeline.fail_count} failures over {timeline.link_candidates} "
        f"links inside {timeline.horizon_ms:.0f} ms"
    )
    for event in timeline.events[:5]:
        print(
            f"    t={event.time_ms:>9.1f} ms  {event.kind:<6} "
            f"{'-'.join(event.subject)}"
        )
    # Same (params, seed) -> the same timeline, in any process.
    again = get_scenario("metro-mesh-flaky-links").instantiate(seed=0)
    assert again.fault_timeline == timeline
    print("  re-instantiating with the same seed reproduces it exactly")
    print()


def run_a_fault_injected_campaign() -> None:
    print("== a campaign with live fail/repair ==")
    result = run_scenario("metro-mesh-flaky-links", {"n_tasks": 10}, seed=1)
    print(
        f"  completed {result.completed}/10, blocked {result.blocked}, "
        f"makespan {result.makespan_ms:.0f} ms"
    )
    for key, value in result.availability.items():
        print(f"    {key:<26s} {value:.3f}")
    print()


def register_a_custom_failure_scenario() -> None:
    print("== a custom failure-aware scenario ==")

    def tiny_ring(params):
        return metro_ring(n_sites=params["n_sites"], servers_per_site=2)

    register(
        ScenarioSpec(
            name="example-ring-outages",
            description="small ring with exponential span faults",
            topology=tiny_ring,
            workload=uniform,
            fault_profile=FaultProfile(
                link_mtbf_ms=20_000.0,
                link_mttr_ms=4_000.0,
                horizon_ms=60_000.0,
            ),
            defaults={
                "n_sites": 6,
                "n_tasks": 8,
                "n_locals": 3,
                "demand_gbps": 8.0,
                "rounds": 6,
                "mean_interarrival_ms": 400.0,
                "background_flows": 5,
                "link_mtbf_ms": 20_000.0,
                "link_mttr_ms": 4_000.0,
                "horizon_ms": 60_000.0,
            },
            serve="campaign",
            tags=("example", "resilience"),
        ),
        replace=True,  # keep the walkthrough re-runnable
    )
    result = run_scenario("example-ring-outages", seed=2)
    print(
        f"  registered and ran 'example-ring-outages': availability "
        f"{result.availability['availability']:.3f}, "
        f"{result.availability['tasks_interrupted']:.0f} interruptions"
    )
    print()


def sweep_fault_intensity_to_jsonl() -> None:
    print("== sweeping fault intensity, streaming rows to JSONL ==")
    config = SweepConfig(
        scenarios=("metro-mesh-flaky-links",),
        grid={"link_mtbf_ms": [20_000.0, 80_000.0], "n_tasks": [8]},
        seeds=(0,),
    )
    with tempfile.NamedTemporaryFile(suffix=".jsonl", mode="r") as sink:
        result = run_sweep(config, jsonl_path=sink.name)
        lines = [json.loads(line) for line in open(sink.name)]
    print(f"  {len(result.rows)} rows, {len(lines)} JSONL lines")
    for row in result.rows:
        print(
            f"    {row['scheduler']:<13s} MTBF={row['link_mtbf_ms']:>8.0f}  "
            f"availability={row['availability']:.3f}  "
            f"interrupted={row['tasks_interrupted']:.0f}"
        )


if __name__ == "__main__":
    browse_fault_aware_scenarios()
    preview_a_timeline()
    run_a_fault_injected_campaign()
    register_a_custom_failure_scenario()
    sweep_fault_intensity_to_jsonl()
