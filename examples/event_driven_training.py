#!/usr/bin/env python
"""Execute training rounds event-by-event and learn their durations.

The analytic evaluator answers "how long *should* a round take"; the
:class:`~repro.core.simulation.RoundExecutor` runs the round as an actual
dependency graph of simulator events — broadcast segments land, locals
train, aggregation nodes wait for all of their inputs.  This example:

1. schedules one task with the fixed and the flexible scheduler,
2. executes five rounds of each on the discrete-event engine,
3. cross-checks the executed timings against the analytic model,
4. feeds an :class:`~repro.core.prediction.IterationPredictor` and shows
   the estimate the re-scheduling policy would consume (the poster's
   "predictability of training iteration can be leveraged").

Run:
    python examples/event_driven_training.py
"""

from repro import (
    FixedScheduler,
    FlexibleScheduler,
    IterationPredictor,
    ScheduleEvaluator,
    Simulator,
    metro_mesh,
)
from repro.core.simulation import RoundExecutor


def build_task(network):
    from repro import AITask, get_model

    servers = network.servers()
    return AITask(
        task_id="edt",
        model=get_model("resnet50"),
        global_node=servers[0],
        local_nodes=tuple(servers[1:8]),
        rounds=5,
        demand_gbps=10.0,
    )


def main() -> None:
    predictor = IterationPredictor()
    for scheduler in (FixedScheduler(), FlexibleScheduler()):
        network = metro_mesh(n_sites=12, servers_per_site=2)
        task = build_task(network)
        schedule = scheduler.schedule(task, network)

        analytic = ScheduleEvaluator(network).round_latency(schedule)
        sim = Simulator()
        executor = RoundExecutor(network, schedule)
        rounds = executor.run_rounds(
            sim,
            observer=lambda tid, ms: predictor.observe(
                f"{scheduler.name}:{tid}", ms
            ),
        )

        print(f"--- {scheduler.name} ---")
        print(f"  analytic round estimate : {analytic.total_ms:9.3f} ms")
        for index, executed in enumerate(rounds):
            print(
                f"  executed round {index}        : {executed.total_ms:9.3f} ms "
                f"(broadcast landed by {executed.broadcast_done_ms:7.3f} ms)"
            )
        estimate = predictor.estimate(f"{scheduler.name}:{task.task_id}")
        print(
            f"  predictor after 5 rounds: {estimate.expected_ms:9.3f} ms "
            f"± {estimate.jitter_ms:.3f} (pessimistic "
            f"{estimate.pessimistic_ms:.3f})"
        )
        drift = abs(estimate.expected_ms - analytic.total_ms) / analytic.total_ms
        print(f"  executed vs analytic    : {drift:9.2%} apart")
        print(f"  simulated clock now     : {sim.now:9.3f} ms\n")


if __name__ == "__main__":
    main()
