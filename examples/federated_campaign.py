#!/usr/bin/env python
"""The paper's evaluation protocol: 30 AI tasks over a loaded metro mesh.

Reproduces Section 3 of the poster end to end through the orchestrator:
a 16-site metro mesh carrying live background traffic, thirty federated
training tasks with a mixed model catalogue, served under the fixed and
flexible schedulers, with average latency and consumed bandwidth printed
per number-of-locals point (the Fig. 3 series).

Run:
    python examples/federated_campaign.py
"""

from repro import (
    FixedScheduler,
    FlexibleScheduler,
    Orchestrator,
    RandomStreams,
    TrafficGenerator,
    WorkloadConfig,
    generate_workload,
    metro_mesh,
)
from repro.orchestrator.database import TaskStatus

N_TASKS = 30
LOCAL_COUNTS = (3, 9, 15)
SEED = 7


def serve_point(scheduler, n_locals):
    """Serve the 30-task mix at one sweep point; return mean metrics."""
    network = metro_mesh(n_sites=16, servers_per_site=2)
    streams = RandomStreams(SEED)
    TrafficGenerator(network, streams).inject_static(40)

    workload = generate_workload(
        network,
        WorkloadConfig(
            n_tasks=N_TASKS,
            n_locals=n_locals,
            model_names=("resnet18", "resnet50", "bert-base"),
            demand_gbps=10.0,
            rounds=5,
        ),
        streams,
    )
    orchestrator = Orchestrator(network, scheduler)
    latencies, bandwidths = [], []
    for task in workload:
        record = orchestrator.admit(task)
        if record.status is not TaskStatus.RUNNING:
            continue
        report = orchestrator.evaluate(task.task_id)
        latencies.append(report.round_latency.total_ms)
        bandwidths.append(report.consumed_bandwidth_gbps)
        orchestrator.complete(task.task_id)
    mean = lambda xs: sum(xs) / len(xs)
    return mean(latencies), mean(bandwidths), len(latencies)


def main() -> None:
    print(f"{N_TASKS} AI tasks per point, metro mesh + background traffic\n")
    header = f"{'locals':>6}  {'scheduler':<14}{'round ms':>10}{'bandwidth Gbps':>16}{'served':>8}"
    print(header)
    print("-" * len(header))
    for n_locals in LOCAL_COUNTS:
        for scheduler in (FixedScheduler(), FlexibleScheduler()):
            latency, bandwidth, served = serve_point(scheduler, n_locals)
            print(
                f"{n_locals:>6}  {scheduler.name:<14}{latency:>10.1f}"
                f"{bandwidth:>16.1f}{served:>8}"
            )
    print(
        "\nShapes match paper Fig. 3: the flexible scheduler's latency "
        "advantage and bandwidth saving both grow with the number of "
        "local models."
    )


if __name__ == "__main__":
    main()
