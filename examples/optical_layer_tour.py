#!/usr/bin/env python
"""Tour of the optical substrate: wavelengths, grooming, and spine-leaf.

Walks through the machinery the paper's testbed provides physically:

1. first-fit wavelength assignment under the continuity constraint on a
   metro ring's ROADM graph;
2. traffic grooming — sub-wavelength demands packed onto lightpaths,
   with idle lightpaths torn down on release;
3. the all-optical spine-leaf fabric (challenge #3): OCS circuits shared
   by OTS timeslots and TCP-vs-RDMA transfer estimates across it.

Run:
    python examples/optical_layer_tour.py
"""

from repro import Network, RdmaTransport, TcpTransport, spine_leaf
from repro.network.node import NodeKind
from repro.optical import (
    GroomingLayer,
    OpticalSpineLeaf,
    RoadmPorts,
    WDMGrid,
)
from repro.transport.channel import Channel


def roadm_ring() -> Network:
    net = Network("roadm-ring")
    for i in range(5):
        net.add_node(f"OXC-{i}", NodeKind.ROADM)
    for i in range(5):
        net.add_link(f"OXC-{i}", f"OXC-{(i + 1) % 5}", 400.0, distance_km=24.0)
    return net


def tour_wavelengths() -> None:
    print("=== 1. wavelength assignment (first fit, continuity) ===")
    net = roadm_ring()
    grid = WDMGrid(net, n_wavelengths=4, channel_gbps=100.0)
    path_a = ["OXC-0", "OXC-1", "OXC-2"]
    path_b = ["OXC-1", "OXC-2", "OXC-3"]
    ch_a = grid.assign(path_a)
    ch_b = grid.assign(path_b)  # overlaps on OXC-1..2: must pick a new channel
    ch_c = grid.assign(["OXC-3", "OXC-4", "OXC-0"])  # disjoint: reuses channel 0
    print(f"  {'-'.join(path_a)}: channel {ch_a}")
    print(f"  {'-'.join(path_b)}: channel {ch_b} (continuity forces a new one)")
    print(f"  OXC-3-OXC-4-OXC-0: channel {ch_c} (spatial reuse)\n")


def tour_grooming() -> None:
    print("=== 2. traffic grooming onto lightpaths ===")
    net = roadm_ring()
    layer = GroomingLayer(
        net, WDMGrid(net, 8, 100.0), ports=RoadmPorts(ports_per_site=8)
    )
    layer.groom_demand("flow-a", "OXC-0", "OXC-2", 40.0)
    layer.groom_demand("flow-b", "OXC-0", "OXC-2", 35.0)  # rides the same lambda
    layer.groom_demand("flow-c", "OXC-0", "OXC-2", 50.0)  # overflow: new lambda
    print(f"  three demands -> {len(layer.lightpaths)} lightpaths "
          f"({layer.lit_wavelength_hops} wavelength-hops lit)")
    layer.release_demand("flow-a")
    layer.release_demand("flow-b")
    print(f"  after releasing a+b -> {len(layer.lightpaths)} lightpath "
          "(idle lambda torn down)\n")


def tour_spine_leaf() -> None:
    print("=== 3. all-optical spine-leaf (OCS + OTS, challenge #3) ===")
    net = spine_leaf(n_spines=4, n_leaves=6, servers_per_leaf=2)
    fabric = OpticalSpineLeaf(net, n_wavelengths=8, channel_gbps=100.0)
    src = fabric.leaf_of("SRV-0-0")
    dst = fabric.leaf_of("SRV-3-1")
    fabric.connect("fl-1", src, dst, 30.0)
    fabric.connect("fl-2", src, dst, 30.0)  # shares the circuit via timeslots
    circuit = fabric.circuits[0]
    print(f"  {src} -> {dst} via {circuit.spine}, channel {circuit.channel}, "
          f"{circuit.slots.utilisation:.0%} of timeslots used")
    print(f"  lit channels: {fabric.lit_channels} "
          "(two demands share one OCS circuit)\n")

    print("  transfer of 400 Mb across the fabric at 30 Gbps:")
    for transport in (TcpTransport(), RdmaTransport()):
        channel = Channel(net, (src, circuit.spine, dst), 30.0, transport)
        estimate = channel.estimate(400.0)
        print(
            f"    {transport.name:>4}: {estimate.total_ms:7.3f} ms, "
            f"endpoint CPU {estimate.endpoint_cpu_ms:8.4f} ms"
        )
    print("  (RDMA: same wire, ~no CPU — challenge #2's motivation)")


def main() -> None:
    tour_wavelengths()
    tour_grooming()
    tour_spine_leaf()


if __name__ == "__main__":
    main()
