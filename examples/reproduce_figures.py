#!/usr/bin/env python
"""Regenerate every paper artefact and save the raw rows as JSON.

Runs the full experiment index of DESIGN.md §4 (figures + ablations) at
the default configurations, prints each table, and writes
``results/<id>.json`` next to this script.

Run (takes a minute or two):
    python examples/reproduce_figures.py
"""

import os
import sys

from repro.cli import EXPERIMENTS


def main() -> None:
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(out_dir, exist_ok=True)
    for name in sorted(EXPERIMENTS):
        print(f"running {name} ...", file=sys.stderr)
        result = EXPERIMENTS[name]()
        print(result.to_table())
        print()
        path = os.path.join(out_dir, f"{name}.json")
        result.save(path)
        print(f"  -> saved {path}", file=sys.stderr)


if __name__ == "__main__":
    main()
