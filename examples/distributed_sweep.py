"""Walkthrough: a distributed sweep — coordinator + two workers on localhost.

Run with::

    PYTHONPATH=src python examples/distributed_sweep.py

The sweep engine's socket backend turns ``run_sweep`` into a
work-stealing coordinator: it listens on a TCP port and any worker that
connects pulls one run at a time, executes it with the exact engine a
serial sweep uses, and streams the rows back.  This script starts the
coordinator in a thread, launches two genuine worker *processes* with
the stock CLI (``repro scenarios worker --connect HOST:PORT`` — the
same command you would run on another machine), and streams every row
into the SQLite sink, then queries the incremental aggregates back.

Byte-identical determinism means it does not matter which worker gets
which run — the rows match a serial sweep exactly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading

from repro.scenarios import (
    SocketQueueBackend,
    SqliteSink,
    SweepConfig,
    read_aggregates,
    run_sweep,
)

#: A fault-injected campaign sweep: availability and makespan per row.
CONFIG = SweepConfig(
    scenarios=("metro-mesh-flaky-links",),
    grid={"n_tasks": [4], "link_mtbf_ms": [15_000.0, 60_000.0]},
    seeds=(0, 1),
)


def spawn_cli_worker(host: str, port: int, name: str) -> subprocess.Popen:
    """The same command a remote machine would run, just on localhost."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "scenarios",
            "worker",
            "--connect",
            f"{host}:{port}",
            "--name",
            name,
        ],
        env=env,
    )


def main() -> None:
    address = {}
    listening = threading.Event()

    def announce(addr):
        address["value"] = addr
        listening.set()

    backend = SocketQueueBackend(
        local_workers=0,  # every run goes to the external workers
        timeout=600.0,
        announce=announce,
    )

    with tempfile.TemporaryDirectory() as scratch:
        db_path = os.path.join(scratch, "sweep.db")
        cache_dir = os.path.join(scratch, "cache")
        results = {}

        def coordinate() -> None:
            try:
                results["result"] = run_sweep(
                    CONFIG,
                    backend=backend,
                    sink=SqliteSink(db_path),
                    cache_dir=cache_dir,  # workers persist straight into it
                )
            except Exception as exc:
                results["error"] = exc
                listening.set()  # unblock the main thread either way

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()
        if not listening.wait(timeout=30.0) or "error" in results:
            raise RuntimeError(
                f"coordinator never started listening: {results.get('error')}"
            )
        host, port = address["value"]
        print(f"coordinator listening on {host}:{port}")

        workers = [
            spawn_cli_worker(host, port, "worker-a"),
            spawn_cli_worker(host, port, "worker-b"),
        ]
        for worker in workers:
            worker.wait(timeout=600)
        coordinator.join(timeout=600)

        if "error" in results:
            raise RuntimeError(f"sweep failed: {results['error']}")
        result = results["result"]
        print()
        print(result.to_table())
        print()
        print("workers wrote the shared per-run cache:")
        print(f"  {len(os.listdir(cache_dir))} cached runs in {cache_dir}")
        print()
        print("incremental aggregates from the SQLite sink:")
        aggregates = read_aggregates(db_path)
        for metric in ("availability", "makespan_ms"):
            for (scenario, scheduler, m), (n, mean) in sorted(aggregates.items()):
                if m == metric:
                    print(f"  {scheduler:<13s} {metric:<13s} n={n}  mean={mean:.4f}")

        serial = run_sweep(CONFIG)
        assert serial.to_json() == result.to_json()
        print()
        print("distributed rows are byte-identical to a serial sweep")


if __name__ == "__main__":
    main()
