"""Walkthrough: the scenario registry and the parallel sweep engine.

Run with::

    PYTHONPATH=src python examples/scenario_sweep.py

Covers the full surface: browsing the catalogue, instantiating one
scenario by hand, registering a custom scenario, running a cached
parallel sweep, and replaying a scenario as a campaign timeline.
"""

from __future__ import annotations

import tempfile
import time

from repro.network.topologies import metro_ring
from repro.orchestrator import run_scenario
from repro.scenarios import (
    ScenarioSpec,
    SweepConfig,
    get_scenario,
    list_scenarios,
    register,
    run_sweep,
)
from repro.scenarios.workloads import pareto


def browse_the_catalogue() -> None:
    print("== built-in scenarios ==")
    for spec in list_scenarios():
        print(f"  {spec.name:<22s} {spec.description}")
    print()


def instantiate_one() -> None:
    print("== one deterministic instance ==")
    spec = get_scenario("scale-free-hubs")
    instance = spec.instantiate({"n_tasks": 5}, seed=42)
    print(f"  network: {instance.network.name}")
    print(f"  tasks:   {[task.task_id for task in instance.workload]}")
    # Same (params, seed) -> the same instance, in any process.
    again = spec.instantiate({"n_tasks": 5}, seed=42)
    assert [t.local_nodes for t in again.workload] == [
        t.local_nodes for t in instance.workload
    ]
    print("  re-instantiating with the same seed reproduces it exactly")
    print()


def register_a_custom_scenario() -> None:
    print("== registering a custom scenario ==")

    def tiny_ring(params):
        return metro_ring(n_sites=params["n_sites"], servers_per_site=2)

    register(
        ScenarioSpec(
            name="example-ring-pareto",
            description="small ring with heavy-tailed demands",
            topology=tiny_ring,
            workload=pareto,
            defaults={
                "n_sites": 5,
                "n_tasks": 8,
                "n_locals": 3,
                "demand_gbps": 8.0,
                "pareto_alpha": 1.7,
                "demand_cap_gbps": 60.0,
                "background_flows": 5,
            },
            tags=("example",),
        ),
        replace=True,  # keep the walkthrough re-runnable
    )
    print("  registered 'example-ring-pareto'")
    print()


def run_a_cached_parallel_sweep() -> None:
    print("== a cached, parallel sweep ==")
    config = SweepConfig(
        scenarios=("example-ring-pareto", "metro-ring-uniform"),
        grid={"n_locals": [2, 4]},
        seeds=(0, 1),
    )
    with tempfile.TemporaryDirectory() as cache:
        t0 = time.perf_counter()
        result = run_sweep(config, workers=2, cache_dir=cache)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_sweep(config, workers=2, cache_dir=cache)
        warm = time.perf_counter() - t0
    print(result.to_table())
    print(f"  cold run {cold:.2f}s, cached rerun {warm:.3f}s")
    print()


def replay_as_a_campaign() -> None:
    print("== a scenario as a campaign timeline ==")
    outcome = run_scenario("nsfnet-bursty", {"n_tasks": 10}, seed=1)
    print(
        f"  completed {outcome.completed}/10, blocked {outcome.blocked}, "
        f"makespan {outcome.makespan_ms:.0f} ms, "
        f"mean round {outcome.mean_round_ms:.1f} ms"
    )


if __name__ == "__main__":
    browse_the_catalogue()
    instantiate_one()
    register_a_custom_scenario()
    run_a_cached_parallel_sweep()
    replay_as_a_campaign()
