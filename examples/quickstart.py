#!/usr/bin/env python
"""Quickstart: schedule one distributed AI task both ways and compare.

Builds the paper's Fig. 1 situation — a global model and three local
models on a small optical metro topology — schedules it with the fixed
(SPFF) baseline and the flexible (MST) scheduler, and prints the routes,
aggregation points, latency, and consumed bandwidth side by side.

Run:
    python examples/quickstart.py
"""

from repro import (
    AITask,
    EvaluationConfig,
    FixedScheduler,
    FlexibleScheduler,
    ScheduleEvaluator,
    get_model,
    toy_triangle,
)


def describe(schedule, report) -> None:
    task = schedule.task
    print(f"--- {schedule.scheduler} ---")
    for local in task.local_nodes:
        down = " > ".join(schedule.broadcast_path_of(local))
        up = " > ".join(schedule.upload_path_of(local))
        print(f"  broadcast to {local}: {down}")
        print(f"  upload from  {local}: {up}")
    print(f"  aggregation at: {', '.join(report.aggregation_nodes)}")
    print(f"  consumed bandwidth: {report.consumed_bandwidth_gbps:.1f} Gbps")
    print(
        f"  round latency: {report.round_latency.total_ms:.2f} ms "
        f"(broadcast {report.round_latency.broadcast_ms:.2f}, "
        f"training {report.round_latency.training_ms:.2f}, "
        f"upload {report.round_latency.upload_ms:.2f})"
    )
    print(f"  total over {task.rounds} rounds: {report.total_latency_ms:.1f} ms")
    print()


def main() -> None:
    task = AITask(
        task_id="quickstart",
        model=get_model("resnet18"),
        global_node="S-G",
        local_nodes=("S-1", "S-2", "S-3"),
        rounds=5,
        demand_gbps=10.0,
    )
    print(f"Task: {task.task_id} ({task.model.name}, "
          f"{task.size_mb:.0f} Mb of weights per procedure)\n")

    for scheduler in (FixedScheduler(), FlexibleScheduler()):
        network = toy_triangle()  # fresh network per scheduler
        schedule = scheduler.schedule(task, network)
        report = ScheduleEvaluator(network, EvaluationConfig()).report(schedule)
        describe(schedule, report)

    print(
        "The flexible scheduler reuses tree edges (lower bandwidth) and "
        "aggregates at intermediate routers instead of only at the global "
        "node."
    )


if __name__ == "__main__":
    main()
